# Empty dependencies file for bench_fig05_cellcomplex.
# This may be replaced when dependencies are built.
