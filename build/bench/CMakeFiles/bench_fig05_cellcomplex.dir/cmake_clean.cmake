file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_cellcomplex.dir/bench_fig05_cellcomplex.cc.o"
  "CMakeFiles/bench_fig05_cellcomplex.dir/bench_fig05_cellcomplex.cc.o.d"
  "bench_fig05_cellcomplex"
  "bench_fig05_cellcomplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_cellcomplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
