# Empty dependencies file for bench_fig09_thematic.
# This may be replaced when dependencies are built.
