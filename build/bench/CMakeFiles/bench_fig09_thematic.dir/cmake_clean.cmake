file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_thematic.dir/bench_fig09_thematic.cc.o"
  "CMakeFiles/bench_fig09_thematic.dir/bench_fig09_thematic.cc.o.d"
  "bench_fig09_thematic"
  "bench_fig09_thematic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_thematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
