file(REMOVE_RECURSE
  "CMakeFiles/bench_thm61_encoding.dir/bench_thm61_encoding.cc.o"
  "CMakeFiles/bench_thm61_encoding.dir/bench_thm61_encoding.cc.o.d"
  "bench_thm61_encoding"
  "bench_thm61_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm61_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
