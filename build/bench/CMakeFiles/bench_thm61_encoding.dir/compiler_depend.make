# Empty compiler generated dependencies file for bench_thm61_encoding.
# This may be replaced when dependencies are built.
