# Empty dependencies file for bench_fig01_invariant.
# This may be replaced when dependencies are built.
