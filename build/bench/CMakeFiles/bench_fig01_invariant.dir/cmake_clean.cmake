file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_invariant.dir/bench_fig01_invariant.cc.o"
  "CMakeFiles/bench_fig01_invariant.dir/bench_fig01_invariant.cc.o.d"
  "bench_fig01_invariant"
  "bench_fig01_invariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
