file(REMOVE_RECURSE
  "CMakeFiles/bench_thm38_validation.dir/bench_thm38_validation.cc.o"
  "CMakeFiles/bench_thm38_validation.dir/bench_thm38_validation.cc.o.d"
  "bench_thm38_validation"
  "bench_thm38_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm38_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
