# Empty dependencies file for bench_thm38_validation.
# This may be replaced when dependencies are built.
