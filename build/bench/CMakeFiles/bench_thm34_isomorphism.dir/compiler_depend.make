# Empty compiler generated dependencies file for bench_thm34_isomorphism.
# This may be replaced when dependencies are built.
