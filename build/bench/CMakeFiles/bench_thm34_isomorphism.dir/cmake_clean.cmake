file(REMOVE_RECURSE
  "CMakeFiles/bench_thm34_isomorphism.dir/bench_thm34_isomorphism.cc.o"
  "CMakeFiles/bench_thm34_isomorphism.dir/bench_thm34_isomorphism.cc.o.d"
  "bench_thm34_isomorphism"
  "bench_thm34_isomorphism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm34_isomorphism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
