file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sinvariant.dir/bench_fig14_sinvariant.cc.o"
  "CMakeFiles/bench_fig14_sinvariant.dir/bench_fig14_sinvariant.cc.o.d"
  "bench_fig14_sinvariant"
  "bench_fig14_sinvariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sinvariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
