# Empty compiler generated dependencies file for bench_fig13_rect.
# This may be replaced when dependencies are built.
