
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_rect.cc" "bench/CMakeFiles/bench_fig13_rect.dir/bench_fig13_rect.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_rect.dir/bench_fig13_rect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebraic/CMakeFiles/topodb_algebraic.dir/DependInfo.cmake"
  "/root/repo/build/src/arrangement/CMakeFiles/topodb_arrangement.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/topodb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/topodb_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/fourint/CMakeFiles/topodb_fourint.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/topodb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/invariant/CMakeFiles/topodb_invariant.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/topodb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/reason/CMakeFiles/topodb_reason.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/topodb_region.dir/DependInfo.cmake"
  "/root/repo/build/src/thematic/CMakeFiles/topodb_thematic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/topodb_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
