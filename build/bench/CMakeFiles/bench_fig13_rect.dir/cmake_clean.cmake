file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_rect.dir/bench_fig13_rect.cc.o"
  "CMakeFiles/bench_fig13_rect.dir/bench_fig13_rect.cc.o.d"
  "bench_fig13_rect"
  "bench_fig13_rect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_rect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
