file(REMOVE_RECURSE
  "CMakeFiles/bench_gpp95_reasoner.dir/bench_gpp95_reasoner.cc.o"
  "CMakeFiles/bench_gpp95_reasoner.dir/bench_gpp95_reasoner.cc.o.d"
  "bench_gpp95_reasoner"
  "bench_gpp95_reasoner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpp95_reasoner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
