# Empty compiler generated dependencies file for bench_gpp95_reasoner.
# This may be replaced when dependencies are built.
