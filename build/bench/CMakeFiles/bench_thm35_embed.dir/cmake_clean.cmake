file(REMOVE_RECURSE
  "CMakeFiles/bench_thm35_embed.dir/bench_thm35_embed.cc.o"
  "CMakeFiles/bench_thm35_embed.dir/bench_thm35_embed.cc.o.d"
  "bench_thm35_embed"
  "bench_thm35_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm35_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
