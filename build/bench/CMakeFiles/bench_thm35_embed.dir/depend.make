# Empty dependencies file for bench_thm35_embed.
# This may be replaced when dependencies are built.
