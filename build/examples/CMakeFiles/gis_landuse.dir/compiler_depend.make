# Empty compiler generated dependencies file for gis_landuse.
# This may be replaced when dependencies are built.
