file(REMOVE_RECURSE
  "CMakeFiles/gis_landuse.dir/gis_landuse.cpp.o"
  "CMakeFiles/gis_landuse.dir/gis_landuse.cpp.o.d"
  "gis_landuse"
  "gis_landuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_landuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
