# Empty dependencies file for census_pla.
# This may be replaced when dependencies are built.
