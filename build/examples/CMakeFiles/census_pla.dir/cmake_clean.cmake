file(REMOVE_RECURSE
  "CMakeFiles/census_pla.dir/census_pla.cpp.o"
  "CMakeFiles/census_pla.dir/census_pla.cpp.o.d"
  "census_pla"
  "census_pla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_pla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
