# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gis_landuse "/root/repo/build/examples/gis_landuse")
set_tests_properties(example_gis_landuse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_census_pla "/root/repo/build/examples/census_pla")
set_tests_properties(example_census_pla PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_query_language "/root/repo/build/examples/query_language")
set_tests_properties(example_query_language PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
