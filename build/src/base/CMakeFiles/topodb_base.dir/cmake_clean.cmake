file(REMOVE_RECURSE
  "CMakeFiles/topodb_base.dir/bigint.cc.o"
  "CMakeFiles/topodb_base.dir/bigint.cc.o.d"
  "CMakeFiles/topodb_base.dir/rational.cc.o"
  "CMakeFiles/topodb_base.dir/rational.cc.o.d"
  "libtopodb_base.a"
  "libtopodb_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
