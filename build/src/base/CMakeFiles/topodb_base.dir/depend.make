# Empty dependencies file for topodb_base.
# This may be replaced when dependencies are built.
