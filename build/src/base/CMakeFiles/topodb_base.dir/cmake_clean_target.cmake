file(REMOVE_RECURSE
  "libtopodb_base.a"
)
