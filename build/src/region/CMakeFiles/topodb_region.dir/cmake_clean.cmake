file(REMOVE_RECURSE
  "CMakeFiles/topodb_region.dir/fixtures.cc.o"
  "CMakeFiles/topodb_region.dir/fixtures.cc.o.d"
  "CMakeFiles/topodb_region.dir/instance.cc.o"
  "CMakeFiles/topodb_region.dir/instance.cc.o.d"
  "CMakeFiles/topodb_region.dir/io.cc.o"
  "CMakeFiles/topodb_region.dir/io.cc.o.d"
  "CMakeFiles/topodb_region.dir/region.cc.o"
  "CMakeFiles/topodb_region.dir/region.cc.o.d"
  "CMakeFiles/topodb_region.dir/transform.cc.o"
  "CMakeFiles/topodb_region.dir/transform.cc.o.d"
  "libtopodb_region.a"
  "libtopodb_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
