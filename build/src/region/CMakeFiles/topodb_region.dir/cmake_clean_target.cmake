file(REMOVE_RECURSE
  "libtopodb_region.a"
)
