# Empty dependencies file for topodb_region.
# This may be replaced when dependencies are built.
