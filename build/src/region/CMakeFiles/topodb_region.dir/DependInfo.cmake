
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/fixtures.cc" "src/region/CMakeFiles/topodb_region.dir/fixtures.cc.o" "gcc" "src/region/CMakeFiles/topodb_region.dir/fixtures.cc.o.d"
  "/root/repo/src/region/instance.cc" "src/region/CMakeFiles/topodb_region.dir/instance.cc.o" "gcc" "src/region/CMakeFiles/topodb_region.dir/instance.cc.o.d"
  "/root/repo/src/region/io.cc" "src/region/CMakeFiles/topodb_region.dir/io.cc.o" "gcc" "src/region/CMakeFiles/topodb_region.dir/io.cc.o.d"
  "/root/repo/src/region/region.cc" "src/region/CMakeFiles/topodb_region.dir/region.cc.o" "gcc" "src/region/CMakeFiles/topodb_region.dir/region.cc.o.d"
  "/root/repo/src/region/transform.cc" "src/region/CMakeFiles/topodb_region.dir/transform.cc.o" "gcc" "src/region/CMakeFiles/topodb_region.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/topodb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/topodb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
