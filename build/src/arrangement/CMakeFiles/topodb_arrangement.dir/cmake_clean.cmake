file(REMOVE_RECURSE
  "CMakeFiles/topodb_arrangement.dir/cell_complex.cc.o"
  "CMakeFiles/topodb_arrangement.dir/cell_complex.cc.o.d"
  "libtopodb_arrangement.a"
  "libtopodb_arrangement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
