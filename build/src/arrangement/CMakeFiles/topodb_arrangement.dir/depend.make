# Empty dependencies file for topodb_arrangement.
# This may be replaced when dependencies are built.
