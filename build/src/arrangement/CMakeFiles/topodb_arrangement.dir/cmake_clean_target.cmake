file(REMOVE_RECURSE
  "libtopodb_arrangement.a"
)
