file(REMOVE_RECURSE
  "CMakeFiles/topodb_geom.dir/point.cc.o"
  "CMakeFiles/topodb_geom.dir/point.cc.o.d"
  "CMakeFiles/topodb_geom.dir/polygon.cc.o"
  "CMakeFiles/topodb_geom.dir/polygon.cc.o.d"
  "CMakeFiles/topodb_geom.dir/predicates.cc.o"
  "CMakeFiles/topodb_geom.dir/predicates.cc.o.d"
  "libtopodb_geom.a"
  "libtopodb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
