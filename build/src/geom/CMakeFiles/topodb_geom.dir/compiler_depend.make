# Empty compiler generated dependencies file for topodb_geom.
# This may be replaced when dependencies are built.
