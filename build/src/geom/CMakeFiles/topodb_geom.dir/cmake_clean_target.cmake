file(REMOVE_RECURSE
  "libtopodb_geom.a"
)
