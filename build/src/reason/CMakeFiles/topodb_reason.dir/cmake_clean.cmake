file(REMOVE_RECURSE
  "CMakeFiles/topodb_reason.dir/network.cc.o"
  "CMakeFiles/topodb_reason.dir/network.cc.o.d"
  "libtopodb_reason.a"
  "libtopodb_reason.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_reason.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
