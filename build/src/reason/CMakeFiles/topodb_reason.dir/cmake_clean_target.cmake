file(REMOVE_RECURSE
  "libtopodb_reason.a"
)
