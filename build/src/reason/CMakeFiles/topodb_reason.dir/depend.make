# Empty dependencies file for topodb_reason.
# This may be replaced when dependencies are built.
