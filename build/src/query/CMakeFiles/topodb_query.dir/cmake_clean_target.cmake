file(REMOVE_RECURSE
  "libtopodb_query.a"
)
