file(REMOVE_RECURSE
  "CMakeFiles/topodb_query.dir/ast.cc.o"
  "CMakeFiles/topodb_query.dir/ast.cc.o.d"
  "CMakeFiles/topodb_query.dir/definability.cc.o"
  "CMakeFiles/topodb_query.dir/definability.cc.o.d"
  "CMakeFiles/topodb_query.dir/eval.cc.o"
  "CMakeFiles/topodb_query.dir/eval.cc.o.d"
  "CMakeFiles/topodb_query.dir/parser.cc.o"
  "CMakeFiles/topodb_query.dir/parser.cc.o.d"
  "CMakeFiles/topodb_query.dir/rect_eval.cc.o"
  "CMakeFiles/topodb_query.dir/rect_eval.cc.o.d"
  "libtopodb_query.a"
  "libtopodb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
