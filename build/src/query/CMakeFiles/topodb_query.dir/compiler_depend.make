# Empty compiler generated dependencies file for topodb_query.
# This may be replaced when dependencies are built.
