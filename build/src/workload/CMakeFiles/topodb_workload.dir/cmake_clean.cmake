file(REMOVE_RECURSE
  "CMakeFiles/topodb_workload.dir/generators.cc.o"
  "CMakeFiles/topodb_workload.dir/generators.cc.o.d"
  "libtopodb_workload.a"
  "libtopodb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
