file(REMOVE_RECURSE
  "libtopodb_workload.a"
)
