# Empty compiler generated dependencies file for topodb_workload.
# This may be replaced when dependencies are built.
