file(REMOVE_RECURSE
  "CMakeFiles/topodb_embed.dir/embed.cc.o"
  "CMakeFiles/topodb_embed.dir/embed.cc.o.d"
  "libtopodb_embed.a"
  "libtopodb_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
