file(REMOVE_RECURSE
  "libtopodb_embed.a"
)
