# Empty compiler generated dependencies file for topodb_embed.
# This may be replaced when dependencies are built.
