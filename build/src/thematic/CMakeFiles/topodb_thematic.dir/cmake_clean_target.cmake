file(REMOVE_RECURSE
  "libtopodb_thematic.a"
)
