# Empty dependencies file for topodb_thematic.
# This may be replaced when dependencies are built.
