file(REMOVE_RECURSE
  "CMakeFiles/topodb_thematic.dir/relation.cc.o"
  "CMakeFiles/topodb_thematic.dir/relation.cc.o.d"
  "CMakeFiles/topodb_thematic.dir/thematic.cc.o"
  "CMakeFiles/topodb_thematic.dir/thematic.cc.o.d"
  "libtopodb_thematic.a"
  "libtopodb_thematic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_thematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
