# Empty compiler generated dependencies file for topodb_fourint.
# This may be replaced when dependencies are built.
