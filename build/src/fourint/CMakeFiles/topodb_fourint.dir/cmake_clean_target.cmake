file(REMOVE_RECURSE
  "libtopodb_fourint.a"
)
