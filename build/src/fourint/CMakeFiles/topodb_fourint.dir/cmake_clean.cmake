file(REMOVE_RECURSE
  "CMakeFiles/topodb_fourint.dir/four_intersection.cc.o"
  "CMakeFiles/topodb_fourint.dir/four_intersection.cc.o.d"
  "libtopodb_fourint.a"
  "libtopodb_fourint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_fourint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
