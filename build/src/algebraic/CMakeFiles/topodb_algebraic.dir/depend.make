# Empty dependencies file for topodb_algebraic.
# This may be replaced when dependencies are built.
