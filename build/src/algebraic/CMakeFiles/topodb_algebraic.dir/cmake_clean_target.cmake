file(REMOVE_RECURSE
  "libtopodb_algebraic.a"
)
