file(REMOVE_RECURSE
  "CMakeFiles/topodb_algebraic.dir/polynomial.cc.o"
  "CMakeFiles/topodb_algebraic.dir/polynomial.cc.o.d"
  "CMakeFiles/topodb_algebraic.dir/trace.cc.o"
  "CMakeFiles/topodb_algebraic.dir/trace.cc.o.d"
  "libtopodb_algebraic.a"
  "libtopodb_algebraic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_algebraic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
