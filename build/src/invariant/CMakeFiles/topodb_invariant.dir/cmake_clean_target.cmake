file(REMOVE_RECURSE
  "libtopodb_invariant.a"
)
