# Empty compiler generated dependencies file for topodb_invariant.
# This may be replaced when dependencies are built.
