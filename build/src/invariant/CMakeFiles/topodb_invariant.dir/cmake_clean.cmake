file(REMOVE_RECURSE
  "CMakeFiles/topodb_invariant.dir/canonical.cc.o"
  "CMakeFiles/topodb_invariant.dir/canonical.cc.o.d"
  "CMakeFiles/topodb_invariant.dir/data.cc.o"
  "CMakeFiles/topodb_invariant.dir/data.cc.o.d"
  "CMakeFiles/topodb_invariant.dir/graph_iso.cc.o"
  "CMakeFiles/topodb_invariant.dir/graph_iso.cc.o.d"
  "CMakeFiles/topodb_invariant.dir/s_invariant.cc.o"
  "CMakeFiles/topodb_invariant.dir/s_invariant.cc.o.d"
  "CMakeFiles/topodb_invariant.dir/validate.cc.o"
  "CMakeFiles/topodb_invariant.dir/validate.cc.o.d"
  "libtopodb_invariant.a"
  "libtopodb_invariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topodb_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
