# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("geom")
subdirs("region")
subdirs("arrangement")
subdirs("invariant")
subdirs("fourint")
subdirs("thematic")
subdirs("query")
subdirs("embed")
subdirs("algebraic")
subdirs("reason")
subdirs("workload")
