#!/usr/bin/env python3
"""Validates a query planner/cache benchmark artifact (topodb.bench_query_plan.v1).

Usage: check_bench_query_plan.py <path> [--min-speedup X]

The artifact compares three evaluation paths per workload: unplanned,
planned (canonicalize + reorder, cold cache), and cached (semantic-cache
hit on an equivalent spelling). The file must be well-formed, declare the
expected schema, and have rows with positive timings whose reported
speedups match the timing ratios. --min-speedup additionally requires
every multi-variant row (variants > 1, i.e. rows that actually exercise
equivalence-class sharing) to have cache_speedup at or above the given
ratio — the ISSUE acceptance floor. Single-variant rows exist to report
planner reordering wins and are exempt. CI's smoke artifact skips the
floor since smoke workloads are deliberately tiny.
"""
import json
import sys

SCHEMA = "topodb.bench_query_plan.v1"
ROW_FIELDS = [
    "name",
    "variants",
    "unplanned_ms",
    "planned_ms",
    "cached_ms",
    "plan_speedup",
    "cache_speedup",
    "semcache_hits",
]


def fail(message):
    print(f"check_bench_query_plan: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_query_plan.py <path> [--min-speedup X]")
    path = sys.argv[1]
    min_speedup = None
    if len(sys.argv) >= 4 and sys.argv[2] == "--min-speedup":
        min_speedup = float(sys.argv[3])

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: no rows")
    for row in rows:
        missing = [k for k in ROW_FIELDS if k not in row]
        if missing:
            fail(f"{path}: row {row.get('name')!r} missing {missing}")
        if row["unplanned_ms"] <= 0 or row["planned_ms"] <= 0 or row["cached_ms"] <= 0:
            fail(f"{path}: row {row['name']!r} has non-positive timings")
        if row["variants"] < 1:
            fail(f"{path}: row {row['name']!r} has no query variants")
        if row["variants"] > 1 and row["semcache_hits"] <= 0:
            fail(f"{path}: multi-variant row {row['name']!r} recorded no "
                 f"semantic-cache hits")
        plan_ratio = row["unplanned_ms"] / row["planned_ms"]
        if abs(plan_ratio - row["plan_speedup"]) > max(0.05 * plan_ratio, 0.1):
            fail(f"{path}: row {row['name']!r} plan_speedup "
                 f"{row['plan_speedup']} inconsistent with timings "
                 f"({plan_ratio:.2f})")
        cache_ratio = row["unplanned_ms"] / row["cached_ms"]
        if abs(cache_ratio - row["cache_speedup"]) > max(0.05 * cache_ratio, 0.1):
            fail(f"{path}: row {row['name']!r} cache_speedup "
                 f"{row['cache_speedup']} inconsistent with timings "
                 f"({cache_ratio:.2f})")

    if min_speedup is not None:
        gated = [r for r in rows if r["variants"] > 1]
        if not gated:
            fail(f"{path}: no multi-variant rows to hold to the floor")
        for row in gated:
            if row["cache_speedup"] < min_speedup:
                fail(f"{path}: row {row['name']!r} cache_speedup "
                     f"{row['cache_speedup']:.1f}x below the {min_speedup}x floor")

    best = max(rows, key=lambda r: r["cache_speedup"])
    print(f"check_bench_query_plan: {path} OK "
          f"({len(rows)} rows, best {best['name']} "
          f"{best['cache_speedup']:.1f}x cached)")


if __name__ == "__main__":
    main()
