#!/usr/bin/env python3
"""Validates a shard-scaling benchmark artifact (topodb.bench_shard.v1).

Usage: check_bench_shard.py <path> [--min-2x A --min-4x B]

The artifact reports closed-loop BATCH_INVARIANTS throughput through the
topodb_router at 1, 2, and 4 shards (bench/bench_shard_scaling.cc); every
response in the run was byte-compared against library ground truth before
the row was emitted. The file must be well-formed, declare the expected
schema, and cover exactly the 1/2/4 shard ladder with positive
throughputs and self-consistent speedups. --min-2x/--min-4x additionally
enforce the ISSUE acceptance floors on the 2- and 4-shard rows; CI's
smoke artifact skips them (smoke workloads are deliberately tiny, so the
cache-capacity effect the floors measure barely registers).
"""
import json
import sys

SCHEMA = "topodb.bench_shard.v1"
ROW_FIELDS = ["shards", "items_per_sec", "seconds", "cache_hits",
              "cache_misses", "speedup_vs_1"]
EXPECTED_LADDER = [1, 2, 4]


def fail(message):
    print(f"check_bench_shard: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_shard.py <path> [--min-2x A --min-4x B]")
    path = sys.argv[1]
    floors = {}
    args = sys.argv[2:]
    while args:
        if args[0] == "--min-2x" and len(args) >= 2:
            floors[2] = float(args[1])
        elif args[0] == "--min-4x" and len(args) >= 2:
            floors[4] = float(args[1])
        else:
            fail(f"unknown argument {args[0]!r}")
        args = args[2:]

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or [r.get("shards") for r in rows] != \
            EXPECTED_LADDER:
        fail(f"{path}: rows must cover the shard ladder {EXPECTED_LADDER}")
    for row in rows:
        missing = [k for k in ROW_FIELDS if k not in row]
        if missing:
            fail(f"{path}: row shards={row.get('shards')} missing {missing}")
        if row["items_per_sec"] <= 0 or row["seconds"] <= 0:
            fail(f"{path}: row shards={row['shards']} has non-positive "
                 f"throughput")

    base = rows[0]["items_per_sec"]
    for row in rows:
        ratio = row["items_per_sec"] / base
        if abs(ratio - row["speedup_vs_1"]) > max(0.05 * ratio, 0.05):
            fail(f"{path}: row shards={row['shards']} speedup "
                 f"{row['speedup_vs_1']} inconsistent with throughputs "
                 f"({ratio:.2f})")

    by_shards = {row["shards"]: row for row in rows}
    for shards, floor in sorted(floors.items()):
        got = by_shards[shards]["speedup_vs_1"]
        if got < floor:
            fail(f"{path}: {shards}-shard speedup {got:.2f}x below the "
                 f"{floor}x floor")

    print(f"check_bench_shard: {path} OK "
          f"(2 shards {by_shards[2]['speedup_vs_1']:.2f}x, "
          f"4 shards {by_shards[4]['speedup_vs_1']:.2f}x)")


if __name__ == "__main__":
    main()
