#!/usr/bin/env python3
"""Validates a predicate-filter benchmark artifact (topodb.bench_predicates.v1).

Usage: check_bench_predicates.py <path> [--min-speedup X]

CI archives the exact-vs-filtered comparison produced by the predicate
benches (TOPODB_BENCH_PREDICATES_JSON=<path>) and fails if the file is not
well-formed, declares an unknown schema, has no workloads, or reports rows
whose numbers are internally inconsistent (non-positive timings, zero
filter-stage activity on a filtered build). --min-speedup additionally
requires at least one workload at or above the given exact/filtered ratio;
the smoke runs in CI skip it, since timings there are deliberately tiny.
"""
import json
import sys


SCHEMA = "topodb.bench_predicates.v1"
ROW_FIELDS = [
    "name",
    "exact_ms",
    "filtered_ms",
    "speedup",
    "static_hits",
    "interval_hits",
    "exact_fallbacks",
]


def fail(message):
    print(f"bench predicates JSON invalid: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    args = sys.argv[1:]
    min_speedup = None
    if "--min-speedup" in args:
        i = args.index("--min-speedup")
        min_speedup = float(args[i + 1])
        del args[i : i + 2]
    if len(args) != 1:
        fail("usage: check_bench_predicates.py <path> [--min-speedup X]")
    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError, ValueError) as err:
        fail(str(err))
    if doc.get("schema") != SCHEMA:
        fail(f"unexpected schema {doc.get('schema')!r} (want {SCHEMA!r})")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail("missing bench name")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("missing or empty workloads list")
    best = 0.0
    for row in workloads:
        for field in ROW_FIELDS:
            if field not in row:
                fail(f"workload row missing field {field!r}: {row}")
        name = row["name"]
        if row["exact_ms"] <= 0 or row["filtered_ms"] <= 0:
            fail(f"{name!r}: non-positive timing")
        resolved = row["static_hits"] + row["interval_hits"] + row["exact_fallbacks"]
        if resolved <= 0:
            fail(f"{name!r}: filtered build resolved zero predicates")
        if any(row[k] < 0 for k in ("static_hits", "interval_hits", "exact_fallbacks")):
            fail(f"{name!r}: negative stage counter")
        best = max(best, row["exact_ms"] / row["filtered_ms"])
    if min_speedup is not None and best < min_speedup:
        fail(f"best speedup {best:.2f}x is below required {min_speedup:.2f}x")
    print(
        f"bench predicates JSON OK ({doc['bench']}): "
        f"{len(workloads)} workloads, best speedup {best:.2f}x"
    )


if __name__ == "__main__":
    main()
