#!/usr/bin/env python3
"""Validates a store benchmark artifact (topodb.bench_store.v1).

Usage: check_bench_store.py <path> [--min-speedup X]

The artifact compares catalog-backed startup + first served canonical
(mmap + checksum + read) against the parse-and-rebuild path, per workload.
The file must be well-formed, declare the expected schema, and have rows
with positive timings and sizes. --min-speedup additionally requires the
LAST row (the largest workload) to be at or above the given ratio — the
ISSUE acceptance floor; CI's smoke artifact skips it since smoke workloads
are deliberately tiny.
"""
import json
import sys

SCHEMA = "topodb.bench_store.v1"
ROW_FIELDS = ["workload", "rebuild_ms", "catalog_ms", "speedup", "file_bytes"]


def fail(message):
    print(f"check_bench_store: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_store.py <path> [--min-speedup X]")
    path = sys.argv[1]
    min_speedup = None
    if len(sys.argv) >= 4 and sys.argv[2] == "--min-speedup":
        min_speedup = float(sys.argv[3])

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: no rows")
    for row in rows:
        missing = [k for k in ROW_FIELDS if k not in row]
        if missing:
            fail(f"{path}: row {row.get('workload')!r} missing {missing}")
        if row["rebuild_ms"] <= 0 or row["catalog_ms"] <= 0:
            fail(f"{path}: row {row['workload']!r} has non-positive timings")
        if row["file_bytes"] <= 0:
            fail(f"{path}: row {row['workload']!r} has no store bytes")
        ratio = row["rebuild_ms"] / row["catalog_ms"]
        if abs(ratio - row["speedup"]) > max(0.05 * ratio, 0.1):
            fail(f"{path}: row {row['workload']!r} speedup "
                 f"{row['speedup']} inconsistent with timings ({ratio:.2f})")

    if min_speedup is not None:
        largest = rows[-1]
        if largest["speedup"] < min_speedup:
            fail(f"{path}: largest workload {largest['workload']!r} speedup "
                 f"{largest['speedup']:.1f}x below the {min_speedup}x floor")

    print(f"check_bench_store: {path} OK "
          f"({len(rows)} rows, largest {rows[-1]['workload']} "
          f"{rows[-1]['speedup']:.1f}x)")


if __name__ == "__main__":
    main()
