#!/usr/bin/env python3
"""Validates an exact-arithmetic benchmark artifact (topodb.bench_exact_arith.v1).

Usage: check_bench_exact_arith.py <path> [--baseline BENCH_predicates.json]

The artifact carries the same exact-vs-filtered arrangement-build rows as
the predicate-filter artifact plus the expansion-stage hit counter
(ISSUE 7). Without --baseline, the check is structural: well-formed JSON,
known schema, positive timings, non-negative counters, at least one row.

With --baseline, each baseline workload row must reappear in the artifact
(matched by name, tolerating an added "<bench>: " prefix on either side)
and its new filtered build time must beat the baseline's filtered build
time by the ISSUE 7 floors: >= 2.0x on stretch-* rows (where the expansion
stage replaces rational fallbacks) and >= 1.5x elsewhere (where the inline
BigInt representation and the limb arena remove the allocator from the
hot path). Baseline rows are the PR 6 numbers checked in as
BENCH_predicates.json; comparing filtered-to-filtered isolates exactly the
work this issue did.
"""
import json
import sys

SCHEMA = "topodb.bench_exact_arith.v1"
ROW_FIELDS = [
    "name",
    "exact_ms",
    "filtered_ms",
    "speedup",
    "static_hits",
    "interval_hits",
    "expansion_hits",
    "exact_fallbacks",
]
COUNTER_FIELDS = ["static_hits", "interval_hits", "expansion_hits",
                  "exact_fallbacks"]
STRETCH_FLOOR = 2.0
DEFAULT_FLOOR = 1.5


def fail(message):
    print(f"bench exact-arith JSON invalid: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError, ValueError) as err:
        fail(str(err))


def base_name(name):
    """Workload name with any '<bench>: ' prefix dropped, for matching
    merged multi-bench artifacts against single-bench ones."""
    return name.split(": ", 1)[-1]


def main():
    args = sys.argv[1:]
    baseline_path = None
    if "--baseline" in args:
        i = args.index("--baseline")
        baseline_path = args[i + 1]
        del args[i : i + 2]
    if len(args) != 1:
        fail("usage: check_bench_exact_arith.py <path> "
             "[--baseline BENCH_predicates.json]")
    doc = load(args[0])
    if doc.get("schema") != SCHEMA:
        fail(f"unexpected schema {doc.get('schema')!r} (want {SCHEMA!r})")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail("missing bench name")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("missing or empty workloads list")
    by_name = {}
    for row in workloads:
        for field in ROW_FIELDS:
            if field not in row:
                fail(f"workload row missing field {field!r}: {row}")
        name = row["name"]
        if row["exact_ms"] <= 0 or row["filtered_ms"] <= 0:
            fail(f"{name!r}: non-positive timing")
        if any(row[k] < 0 for k in COUNTER_FIELDS):
            fail(f"{name!r}: negative stage counter")
        if sum(row[k] for k in COUNTER_FIELDS) <= 0:
            fail(f"{name!r}: filtered build resolved zero predicates")
        by_name[base_name(name)] = row

    if baseline_path is None:
        print(
            f"bench exact-arith JSON OK ({doc['bench']}): "
            f"{len(workloads)} workloads"
        )
        return

    baseline = load(baseline_path)
    base_rows = baseline.get("workloads")
    if not isinstance(base_rows, list) or not base_rows:
        fail(f"baseline {baseline_path}: missing or empty workloads list")
    checked = 0
    for base_row in base_rows:
        name = base_name(base_row["name"])
        if name not in by_name:
            fail(f"baseline workload {base_row['name']!r} missing from artifact")
        row = by_name[name]
        floor = STRETCH_FLOOR if "stretch" in name else DEFAULT_FLOOR
        ratio = base_row["filtered_ms"] / row["filtered_ms"]
        if ratio < floor:
            fail(
                f"{name!r}: filtered build {row['filtered_ms']:.3f}ms is only "
                f"{ratio:.2f}x faster than baseline "
                f"{base_row['filtered_ms']:.3f}ms (floor {floor:.1f}x)"
            )
        checked += 1
        print(
            f"  {name}: {base_row['filtered_ms']:.3f}ms -> "
            f"{row['filtered_ms']:.3f}ms ({ratio:.2f}x, floor {floor:.1f}x)"
        )
    print(
        f"bench exact-arith JSON OK ({doc['bench']}): {len(workloads)} "
        f"workloads, {checked} baseline rows at or above their floors"
    )


if __name__ == "__main__":
    main()
