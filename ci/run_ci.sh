#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes. Usage: ci/run_ci.sh [--no-sanitizers]
#
#   1. Configure + build + full ctest suite in build-ci/ (the same command
#      sequence as ROADMAP.md's verify step, in a separate tree so a
#      developer's ./build is left alone).
#   2. Smoke-run the pipeline benches (batch invariants + query evaluation
#      + query planner/semantic cache) so their reports, verdict assertions
#      and every strategy/thread code path execute on each CI run; any
#      nonzero exit fails CI. The batch bench also writes its per-stage
#      metrics JSON to ci/artifacts/, which is validated against the
#      topodb.metrics schema and archived; bench_query_plan's export is
#      validated for the planner.* / semcache.* series, and the checked-in
#      BENCH_query_plan.json is held to the cache-speedup floor.
#   3. Loopback serving smoke: start topodb_server on an ephemeral port,
#      drive it with topodb_client (PING + BATCH_INVARIANTS), then SIGTERM
#      and assert the graceful-drain exit code. Also smoke-runs
#      bench_server_load (closed loop + overload shed assertions) and
#      archives its server metrics JSON.
#   3b. Catalog loopback smoke: ingest fixtures with topodb_load, start
#      topodb_server --catalog against the directory, drive LOAD / LIST /
#      DESCRIBE / ISO / BATCH through the CLI with @name catalog refs,
#      assert the documented exit codes (NotFound=4 for an unknown name),
#      EVAL_QUERY the catalog twice with equivalent spellings and pin a
#      semantic-cache hit in the metrics export, then restart the server
#      on the same directory and serve again with no re-ingest — the
#      durability contract, end to end over TCP.
#   3c. Multi-shard loopback: two catalog-backed shards behind a
#      topodb_router. LOAD through the router places entries on their ring
#      owners, LIST merges the fleet, then SIGTERM kills one shard mid-run
#      and the router must route inline work around the corpse (exit 0,
#      router.rerouted advancing) while name-keyed reads of the dead
#      shard's catalog fail with the documented Unavailable code. Finally
#      the router itself drains cleanly. Also smoke-runs
#      bench_shard_scaling (ground-truth-checked scatter-gather at 1/2/4
#      shards) and holds the checked-in BENCH_shard.json to the scaling
#      floors.
#   4. Rebuild the test suite under ASan+UBSan (with float-cast-overflow)
#      in build-asan/ and run it — this is what runs the predicate-filter,
#      expansion-stage and BigInt fast-path differential fuzz suites with
#      sanitized float<->int conversions, and what proves the limb-arena
#      lifetime rules (a use-after-reset or double free of an arena block
#      is an ASan error, not a silent corruption).
#   5. Rebuild under TSan in build-tsan/ and run the ConcurrencyTest and
#      ServerTest suites (shared caches, shared registries, parallel
#      fan-out, mid-flight cancellation, the full serving path) — the
#      cross-thread paths, specifically.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "==> tier-1: build + ctest"
run_suite build-ci

echo "==> bench smoke: pipeline batch + query evaluation"
# TOPODB_BENCH_SMOKE shrinks workloads/repetitions; --benchmark_min_time
# caps each timing series at 0.01s. bench_query_eval exits nonzero on any
# baseline-vs-bitset verdict mismatch, making the smoke run a correctness
# gate, not just a liveness check.
mkdir -p ci/artifacts
TOPODB_BENCH_SMOKE=1 \
TOPODB_METRICS_JSON=ci/artifacts/pipeline_batch_metrics.json \
TOPODB_BENCH_PREDICATES_JSON=ci/artifacts/bench_predicates.json \
TOPODB_BENCH_EXACT_ARITH_JSON=ci/artifacts/bench_exact_arith.json \
  ./build-ci/bench/bench_pipeline_batch --benchmark_min_time=0.01
TOPODB_BENCH_SMOKE=1 \
TOPODB_METRICS_JSON=ci/artifacts/query_eval_metrics.json \
  ./build-ci/bench/bench_query_eval --benchmark_min_time=0.01

echo "==> metrics artifact: validate schema"
python3 ci/check_metrics_json.py ci/artifacts/pipeline_batch_metrics.json
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
  ci/artifacts/query_eval_metrics.json
# Exact-vs-filtered predicate comparison rows (timings + per-stage filter
# hit counters). No --min-speedup in the smoke run: its workloads are
# deliberately tiny; BENCH_predicates.json in the repo root records the
# full-size numbers.
python3 ci/check_bench_predicates.py ci/artifacts/bench_predicates.json
# The checked-in full-size artifact must stay well-formed and keep the
# headline >=3x row (stretch-64bit); regenerate with
#   TOPODB_BENCH_PREDICATES_JSON=BENCH_predicates.json \
#     build/bench/bench_pipeline_batch --benchmark_filter='^$'
python3 ci/check_bench_predicates.py BENCH_predicates.json --min-speedup 3
# Exact-arithmetic rows (ISSUE 7): the smoke artifact must be well-formed;
# the checked-in full-size BENCH_exact_arith.json must additionally beat
# the PR 6 filtered timings in BENCH_predicates.json by the per-row floors
# (>=2x on stretch-* rows, >=1.5x elsewhere). Regenerate with
#   TOPODB_BENCH_EXACT_ARITH_JSON=BENCH_exact_arith.json \
#     build/bench/bench_pipeline_batch --benchmark_filter='^$'
# then merge the fig05 rows the same way as BENCH_predicates.json.
python3 ci/check_bench_exact_arith.py ci/artifacts/bench_exact_arith.json
python3 ci/check_bench_exact_arith.py BENCH_exact_arith.json \
  --baseline BENCH_predicates.json

echo "==> server smoke: loopback PING + BATCH, graceful SIGTERM drain"
# The daemon prints its bound address on stdout; parse the ephemeral port
# from the first line, exercise two opcodes through the CLI client, then
# send SIGTERM and require exit 0 — the daemon's contract that every
# admitted request was answered before the process left.
server_log=ci/artifacts/server_smoke.log
./build-ci/src/server/topodb_server --workers 2 --queue 16 \
  > "$server_log" &
server_pid=$!
for _ in $(seq 1 50); do
  grep -q "listening on" "$server_log" 2>/dev/null && break
  sleep 0.1
done
server_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$server_log" | head -1)
[[ -n "$server_port" ]] || { echo "server never came up"; exit 1; }
./build-ci/src/client/topodb_client --port "$server_port" ping
./build-ci/src/client/topodb_client --port "$server_port" \
  batch fig1a fig1d nested
kill -TERM "$server_pid"
wait "$server_pid"
grep -q "drained cleanly" "$server_log" \
  || { echo "server did not drain cleanly"; exit 1; }

echo "==> server smoke: bench_server_load (closed loop + overload shed)"
TOPODB_BENCH_SMOKE=1 \
TOPODB_METRICS_JSON=ci/artifacts/server_load_metrics.json \
  ./build-ci/bench/bench_server_load --benchmark_min_time=0.01
python3 ci/check_metrics_json.py ci/artifacts/server_load_metrics.json

echo "==> bench smoke: store (catalog startup vs parse-and-rebuild)"
# Smoke workloads are tiny so no speedup floor is enforced on the smoke
# artifact; the checked-in full-size BENCH_store.json carries the >=5x
# acceptance bar. Regenerate with
#   TOPODB_BENCH_STORE_JSON=BENCH_store.json \
#     build/bench/bench_store --benchmark_filter='^$'
TOPODB_BENCH_SMOKE=1 \
TOPODB_BENCH_STORE_JSON=ci/artifacts/bench_store.json \
  ./build-ci/bench/bench_store --benchmark_min_time=0.01
python3 ci/check_bench_store.py ci/artifacts/bench_store.json
python3 ci/check_bench_store.py BENCH_store.json --min-speedup 5

echo "==> bench smoke: query planner + semantic cache"
# bench_query_plan doubles as a differential gate: any unplanned vs
# planned vs cached verdict divergence exits nonzero before a single
# timing is reported. Smoke workloads are tiny so the cache-speedup
# floor applies only to the checked-in full-size artifact (the ISSUE
# acceptance bar is >=5x, enforced by the bench itself at generation
# time; CI holds the committed file to >=3x so timing jitter between
# machines cannot flake the gate). Regenerate with
#   TOPODB_BENCH_QUERY_PLAN_JSON=BENCH_query_plan.json \
#     build/bench/bench_query_plan --benchmark_filter='^$'
TOPODB_BENCH_SMOKE=1 \
TOPODB_BENCH_QUERY_PLAN_JSON=ci/artifacts/bench_query_plan.json \
TOPODB_METRICS_JSON=ci/artifacts/query_plan_metrics.json \
  ./build-ci/bench/bench_query_plan --benchmark_min_time=0.01
python3 ci/check_bench_query_plan.py ci/artifacts/bench_query_plan.json
python3 ci/check_bench_query_plan.py BENCH_query_plan.json --min-speedup 3
# The bench registry skips the ingest pipeline, so validate the planner /
# semcache series specifically.
python3 ci/check_metrics_json.py ci/artifacts/query_plan_metrics.json \
  --require-semcache

echo "==> catalog smoke: ingest, serve, exit codes, restart"
# expect_exit CODE cmd... : run under set -e, demand the documented exit
# code (src/base/status.h ExitCodeForStatus — status_test pins the table).
expect_exit() {
  local want=$1; shift
  local got=0
  "$@" || got=$?
  if [[ "$got" != "$want" ]]; then
    echo "expected exit $want from: $* (got $got)"; exit 1
  fi
}
catalog_dir=$(mktemp -d /tmp/topodb_ci_catalog_XXXXXX)
trap 'rm -rf "$catalog_dir"' EXIT
./build-ci/src/store/topodb_load --catalog "$catalog_dir" \
  fixtures fig1a nested
./build-ci/src/store/topodb_load --catalog "$catalog_dir" workload chain:16
catalog_log=ci/artifacts/server_catalog_smoke.log
./build-ci/src/server/topodb_server --workers 2 --queue 16 \
  --catalog "$catalog_dir" > "$catalog_log" &
catalog_pid=$!
for _ in $(seq 1 50); do
  grep -q "listening on" "$catalog_log" 2>/dev/null && break
  sleep 0.1
done
catalog_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$catalog_log" | head -1)
[[ -n "$catalog_port" ]] || { echo "catalog server never came up"; exit 1; }
client="./build-ci/src/client/topodb_client --port $catalog_port"
$client load fig1d fig1d
$client list | grep -q "4 instance(s)" \
  || { echo "catalog list should show 4 instances"; exit 1; }
$client describe fig1a | grep -q "s-invariant" \
  || { echo "describe fig1a failed"; exit 1; }
# Byte-identity proxy: the catalog-served instance must be isomorphic to
# the same fixture sent inline as text.
$client iso @fig1a fig1a | grep -qx "isomorphic" \
  || { echo "catalog fig1a diverges from the text path"; exit 1; }
$client batch @fig1a @nested @chain:16 fig1d
# EVAL_QUERY over the catalog, twice with equivalent spellings: the first
# is a semantic-cache miss, the double-negated respelling canonicalizes
# to the same key and must be answered from the verdict cache. The
# server's metrics export then has to show the planner ran and the cache
# hit (semcache.hits >= 1), which the --require-semcache checker pins.
$client eval @fig1a "connect(A, A)" | grep -qx "true" \
  || { echo "eval connect(A, A) on fig1a should be true"; exit 1; }
$client eval @fig1a "not (not connect(A, A))" | grep -qx "true" \
  || { echo "respelled eval should hit the verdict cache as true"; exit 1; }
$client metrics > ci/artifacts/catalog_metrics.json
python3 ci/check_metrics_json.py ci/artifacts/catalog_metrics.json \
  --require-semcache
# Unknown catalog names are NotFound (4) uniformly across opcodes.
expect_exit 4 $client describe ghost
expect_exit 4 $client invariant @ghost
expect_exit 4 $client iso @ghost fig1a
# An invalid catalog name is rejected before ingest (InvalidArgument = 2).
expect_exit 2 $client load "bad/name" fig1a
kill -TERM "$catalog_pid"
wait "$catalog_pid"
grep -q "drained cleanly" "$catalog_log" \
  || { echo "catalog server did not drain cleanly"; exit 1; }
# Restart against the same directory: everything must serve from the
# store files alone, including the entry loaded over the wire.
./build-ci/src/server/topodb_server --workers 2 --queue 16 \
  --catalog "$catalog_dir" > "$catalog_log" &
catalog_pid=$!
for _ in $(seq 1 50); do
  grep -q "listening on" "$catalog_log" 2>/dev/null && break
  sleep 0.1
done
catalog_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$catalog_log" | head -1)
[[ -n "$catalog_port" ]] || { echo "catalog restart never came up"; exit 1; }
client="./build-ci/src/client/topodb_client --port $catalog_port"
$client list | grep -q "4 instance(s)" \
  || { echo "restart lost catalog entries"; exit 1; }
$client describe fig1d | grep -q "fig1d: entry" \
  || { echo "restart lost the wire-loaded entry"; exit 1; }
$client batch @fig1a @nested @chain:16 @fig1d
$client iso @fig1d fig1d | grep -qx "isomorphic" \
  || { echo "restarted catalog fig1d diverges from the text path"; exit 1; }
kill -TERM "$catalog_pid"
wait "$catalog_pid"
grep -q "drained cleanly" "$catalog_log" \
  || { echo "restarted catalog server did not drain cleanly"; exit 1; }

echo "==> shard smoke: 2-shard fleet, kill-one-shard route-around, drain"
# Two catalog-backed shards behind a router. With ring ids a/b (vnodes 64)
# the placements below are deterministic — shard_ring_test pins the hash,
# so a change that moves them is a placement break, not CI flakiness:
#   catalog names:  single,fig6 -> a     nested,fig1a -> b
#   inline texts:   fig6,nested,disjoint -> b
shard_a_dir=$(mktemp -d /tmp/topodb_ci_shard_a_XXXXXX)
shard_b_dir=$(mktemp -d /tmp/topodb_ci_shard_b_XXXXXX)
trap 'rm -rf "$catalog_dir" "$shard_a_dir" "$shard_b_dir"' EXIT
start_server() {  # start_server LOGFILE ARGS... ; sets started_pid/started_port
  local log=$1; shift
  "$@" > "$log" &
  started_pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening on" "$log" 2>/dev/null && break
    sleep 0.1
  done
  started_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$log" | head -1)
  [[ -n "$started_port" ]] || { echo "$log: never came up"; exit 1; }
}
start_server ci/artifacts/shard_a.log \
  ./build-ci/src/server/topodb_server --workers 2 --queue 16 \
  --catalog "$shard_a_dir"
shard_a_pid=$started_pid; shard_a_port=$started_port
start_server ci/artifacts/shard_b.log \
  ./build-ci/src/server/topodb_server --workers 2 --queue 16 \
  --catalog "$shard_b_dir"
shard_b_pid=$started_pid; shard_b_port=$started_port
start_server ci/artifacts/shard_router.log \
  ./build-ci/src/shard/topodb_router \
  --shard "a=$shard_a_port" --shard "b=$shard_b_port"
router_pid=$started_pid; router_port=$started_port
rclient="./build-ci/src/client/topodb_client --port $router_port"
$rclient ping
# LOAD through the router: each entry lands on its ring owner's catalog.
$rclient load single single
$rclient load fig6 fig6
$rclient load nested nested
$rclient load fig1a fig1a
$rclient list | grep -q "4 instance(s)" \
  || { echo "router list should merge 4 instances"; exit 1; }
# Placement is physical: each shard's own catalog directory holds exactly
# its ring-owned entries.
[[ -n "$(ls -A "$shard_a_dir")" && -n "$(ls -A "$shard_b_dir")" ]] \
  || { echo "LOAD through the router did not split across shards"; exit 1; }
$rclient describe nested | grep -q "s-invariant" \
  || { echo "router describe nested failed"; exit 1; }
# Cross-shard scatter-gather (catalog refs on both shards + inline texts)
# and a cross-path ISO check through the router.
$rclient batch @single @nested fig1a fig6
$rclient iso @single single | grep -qx "isomorphic" \
  || { echo "router catalog single diverges from the text path"; exit 1; }
$rclient eval fig1a "connect(A, A)" | grep -qx "true" \
  || { echo "router eval connect(A, A) on fig1a should be true"; exit 1; }
# Kill shard b mid-run. Inline work it owned must route around the corpse;
# name-keyed reads of its catalog must fail with Unavailable (9).
kill -TERM "$shard_b_pid"
wait "$shard_b_pid"
$rclient batch fig6 nested disjoint
$rclient invariant nested
expect_exit 9 $rclient describe nested
$rclient describe single | grep -q "s-invariant" \
  || { echo "surviving shard lost its catalog"; exit 1; }
$rclient list | grep -q "2 instance(s)" \
  || { echo "router list should serve the surviving shard"; exit 1; }
$rclient metrics > ci/artifacts/router_metrics.json
python3 - <<'EOF'
import json
doc = json.load(open("ci/artifacts/router_metrics.json"))
counters = doc["counters"]
assert counters.get("router.rerouted", 0) >= 1, counters
assert counters.get("router.health_transitions", 0) >= 1, counters
assert counters.get("shard.a.server.requests", 0) >= 1, counters
print("router metrics OK: rerouted=%d health_transitions=%d" %
      (counters["router.rerouted"], counters["router.health_transitions"]))
EOF
kill -TERM "$router_pid"
wait "$router_pid"
grep -q "drained cleanly" ci/artifacts/shard_router.log \
  || { echo "router did not drain cleanly"; exit 1; }
kill -TERM "$shard_a_pid"
wait "$shard_a_pid"

echo "==> bench smoke: shard scaling (router scatter-gather, 1/2/4 shards)"
# Every response in the bench is byte-compared against library ground
# truth, so the smoke run is a correctness gate for the scatter-gather
# path. Smoke workloads are tiny so the scaling floors apply only to the
# checked-in full-size artifact. Regenerate with
#   TOPODB_BENCH_SHARD_JSON=BENCH_shard.json \
#     build/bench/bench_shard_scaling --benchmark_filter='^$'
TOPODB_BENCH_SMOKE=1 \
TOPODB_BENCH_SHARD_JSON=ci/artifacts/bench_shard.json \
  ./build-ci/bench/bench_shard_scaling --benchmark_min_time=0.01
python3 ci/check_bench_shard.py ci/artifacts/bench_shard.json
python3 ci/check_bench_shard.py BENCH_shard.json --min-2x 1.6 --min-4x 2.5

if [[ "${1:-}" != "--no-sanitizers" ]]; then
  echo "==> sanitizers: ASan + UBSan (incl. float-cast-overflow)"
  # float-cast-overflow is not part of GCC's "undefined" group; it is named
  # explicitly so the predicate-filter fuzz suites (predicate_filter_test,
  # interval_test) run with their double<->rational conversion paths
  # checked for out-of-range casts.
  run_suite build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined,float-cast-overflow -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined,float-cast-overflow"

  echo "==> sanitizers: TSan (ConcurrencyTest + ServerTest + RouterTest)"
  # A full TSan suite run would dominate CI wall-clock; these suites are
  # written to cover exactly the cross-thread access patterns (shared
  # InvariantCache, shared MetricsRegistry, one engine serving many
  # threads, cancellation flipped mid-flight, the acceptor/reader/worker
  # handoffs of the serving layer, and the router's scatter threads /
  # health-prober / session handoffs on top of real backend fleets).
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j --target concurrency_test server_test \
    shard_router_test
  ctest --test-dir build-tsan --output-on-failure \
    -R "ConcurrencyTest|ServerTest|RouterTest"
fi

echo "==> CI OK"
