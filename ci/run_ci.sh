#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass. Usage: ci/run_ci.sh [--no-sanitizers]
#
#   1. Configure + build + full ctest suite in build-ci/ (the same command
#      sequence as ROADMAP.md's verify step, in a separate tree so a
#      developer's ./build is left alone).
#   2. Smoke-run the pipeline benches (batch invariants + query evaluation)
#      so their reports, verdict assertions and every strategy/thread code
#      path execute on each CI run; any nonzero exit fails CI.
#   3. Rebuild the test suite under ASan+UBSan in build-asan/ and run it.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "==> tier-1: build + ctest"
run_suite build-ci

echo "==> bench smoke: pipeline batch + query evaluation"
# TOPODB_BENCH_SMOKE shrinks workloads/repetitions; --benchmark_min_time
# caps each timing series at 0.01s. bench_query_eval exits nonzero on any
# baseline-vs-bitset verdict mismatch, making the smoke run a correctness
# gate, not just a liveness check.
TOPODB_BENCH_SMOKE=1 ./build-ci/bench/bench_pipeline_batch \
  --benchmark_min_time=0.01
TOPODB_BENCH_SMOKE=1 ./build-ci/bench/bench_query_eval \
  --benchmark_min_time=0.01

if [[ "${1:-}" != "--no-sanitizers" ]]; then
  echo "==> sanitizers: ASan + UBSan"
  run_suite build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
fi

echo "==> CI OK"
