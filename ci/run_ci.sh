#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass. Usage: ci/run_ci.sh [--no-sanitizers]
#
#   1. Configure + build + full ctest suite in build-ci/ (the same command
#      sequence as ROADMAP.md's verify step, in a separate tree so a
#      developer's ./build is left alone).
#   2. Rebuild the test suite under ASan+UBSan in build-asan/ and run it.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "==> tier-1: build + ctest"
run_suite build-ci

if [[ "${1:-}" != "--no-sanitizers" ]]; then
  echo "==> sanitizers: ASan + UBSan"
  run_suite build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
fi

echo "==> CI OK"
