#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes. Usage: ci/run_ci.sh [--no-sanitizers]
#
#   1. Configure + build + full ctest suite in build-ci/ (the same command
#      sequence as ROADMAP.md's verify step, in a separate tree so a
#      developer's ./build is left alone).
#   2. Smoke-run the pipeline benches (batch invariants + query evaluation)
#      so their reports, verdict assertions and every strategy/thread code
#      path execute on each CI run; any nonzero exit fails CI. The batch
#      bench also writes its per-stage metrics JSON to ci/artifacts/, which
#      is validated against the topodb.metrics schema and archived.
#   3. Loopback serving smoke: start topodb_server on an ephemeral port,
#      drive it with topodb_client (PING + BATCH_INVARIANTS), then SIGTERM
#      and assert the graceful-drain exit code. Also smoke-runs
#      bench_server_load (closed loop + overload shed assertions) and
#      archives its server metrics JSON.
#   4. Rebuild the test suite under ASan+UBSan (with float-cast-overflow)
#      in build-asan/ and run it — this is what runs the predicate-filter,
#      expansion-stage and BigInt fast-path differential fuzz suites with
#      sanitized float<->int conversions, and what proves the limb-arena
#      lifetime rules (a use-after-reset or double free of an arena block
#      is an ASan error, not a silent corruption).
#   5. Rebuild under TSan in build-tsan/ and run the ConcurrencyTest and
#      ServerTest suites (shared caches, shared registries, parallel
#      fan-out, mid-flight cancellation, the full serving path) — the
#      cross-thread paths, specifically.
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "==> tier-1: build + ctest"
run_suite build-ci

echo "==> bench smoke: pipeline batch + query evaluation"
# TOPODB_BENCH_SMOKE shrinks workloads/repetitions; --benchmark_min_time
# caps each timing series at 0.01s. bench_query_eval exits nonzero on any
# baseline-vs-bitset verdict mismatch, making the smoke run a correctness
# gate, not just a liveness check.
mkdir -p ci/artifacts
TOPODB_BENCH_SMOKE=1 \
TOPODB_METRICS_JSON=ci/artifacts/pipeline_batch_metrics.json \
TOPODB_BENCH_PREDICATES_JSON=ci/artifacts/bench_predicates.json \
TOPODB_BENCH_EXACT_ARITH_JSON=ci/artifacts/bench_exact_arith.json \
  ./build-ci/bench/bench_pipeline_batch --benchmark_min_time=0.01
TOPODB_BENCH_SMOKE=1 \
TOPODB_METRICS_JSON=ci/artifacts/query_eval_metrics.json \
  ./build-ci/bench/bench_query_eval --benchmark_min_time=0.01

echo "==> metrics artifact: validate schema"
python3 ci/check_metrics_json.py ci/artifacts/pipeline_batch_metrics.json
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
  ci/artifacts/query_eval_metrics.json
# Exact-vs-filtered predicate comparison rows (timings + per-stage filter
# hit counters). No --min-speedup in the smoke run: its workloads are
# deliberately tiny; BENCH_predicates.json in the repo root records the
# full-size numbers.
python3 ci/check_bench_predicates.py ci/artifacts/bench_predicates.json
# The checked-in full-size artifact must stay well-formed and keep the
# headline >=3x row (stretch-64bit); regenerate with
#   TOPODB_BENCH_PREDICATES_JSON=BENCH_predicates.json \
#     build/bench/bench_pipeline_batch --benchmark_filter='^$'
python3 ci/check_bench_predicates.py BENCH_predicates.json --min-speedup 3
# Exact-arithmetic rows (ISSUE 7): the smoke artifact must be well-formed;
# the checked-in full-size BENCH_exact_arith.json must additionally beat
# the PR 6 filtered timings in BENCH_predicates.json by the per-row floors
# (>=2x on stretch-* rows, >=1.5x elsewhere). Regenerate with
#   TOPODB_BENCH_EXACT_ARITH_JSON=BENCH_exact_arith.json \
#     build/bench/bench_pipeline_batch --benchmark_filter='^$'
# then merge the fig05 rows the same way as BENCH_predicates.json.
python3 ci/check_bench_exact_arith.py ci/artifacts/bench_exact_arith.json
python3 ci/check_bench_exact_arith.py BENCH_exact_arith.json \
  --baseline BENCH_predicates.json

echo "==> server smoke: loopback PING + BATCH, graceful SIGTERM drain"
# The daemon prints its bound address on stdout; parse the ephemeral port
# from the first line, exercise two opcodes through the CLI client, then
# send SIGTERM and require exit 0 — the daemon's contract that every
# admitted request was answered before the process left.
server_log=ci/artifacts/server_smoke.log
./build-ci/src/server/topodb_server --workers 2 --queue 16 \
  > "$server_log" &
server_pid=$!
for _ in $(seq 1 50); do
  grep -q "listening on" "$server_log" 2>/dev/null && break
  sleep 0.1
done
server_port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$server_log" | head -1)
[[ -n "$server_port" ]] || { echo "server never came up"; exit 1; }
./build-ci/src/client/topodb_client --port "$server_port" ping
./build-ci/src/client/topodb_client --port "$server_port" \
  batch fig1a fig1d nested
kill -TERM "$server_pid"
wait "$server_pid"
grep -q "drained cleanly" "$server_log" \
  || { echo "server did not drain cleanly"; exit 1; }

echo "==> server smoke: bench_server_load (closed loop + overload shed)"
TOPODB_BENCH_SMOKE=1 \
TOPODB_METRICS_JSON=ci/artifacts/server_load_metrics.json \
  ./build-ci/bench/bench_server_load --benchmark_min_time=0.01
python3 ci/check_metrics_json.py ci/artifacts/server_load_metrics.json

if [[ "${1:-}" != "--no-sanitizers" ]]; then
  echo "==> sanitizers: ASan + UBSan (incl. float-cast-overflow)"
  # float-cast-overflow is not part of GCC's "undefined" group; it is named
  # explicitly so the predicate-filter fuzz suites (predicate_filter_test,
  # interval_test) run with their double<->rational conversion paths
  # checked for out-of-range casts.
  run_suite build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined,float-cast-overflow -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined,float-cast-overflow"

  echo "==> sanitizers: TSan (ConcurrencyTest + ServerTest suites)"
  # A full TSan suite run would dominate CI wall-clock; these two suites
  # are written to cover exactly the cross-thread access patterns (shared
  # InvariantCache, shared MetricsRegistry, one engine serving many
  # threads, cancellation flipped mid-flight, and the acceptor/reader/
  # worker handoffs of the serving layer).
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j --target concurrency_test server_test
  ctest --test-dir build-tsan --output-on-failure -R "ConcurrencyTest|ServerTest"
fi

echo "==> CI OK"
