#!/usr/bin/env python3
"""Validates a MetricsRegistry JSON export (schema topodb.metrics.v1).

Usage: check_metrics_json.py <path>

CI archives the per-stage timing export produced by bench_pipeline_batch
(TOPODB_METRICS_JSON=<path>) and fails if the file is not well-formed JSON,
declares a different schema, or is missing the per-stage instrumentation
the serving path is supposed to emit.
"""
import json
import sys


EXPECTED_COUNTERS = [
    "pipeline.items",
    "pipeline.cache_hits",
    "pipeline.cache_misses",
    "arrangement.builds",
]
EXPECTED_HISTOGRAMS = [
    "pipeline.arrangement_us",
    "pipeline.extract_us",
    "pipeline.canonical_us",
    "pipeline.batch_us",
]
HISTOGRAM_FIELDS = ["count", "sum", "min", "max", "mean", "p50", "p90", "p99"]


def fail(message):
    print(f"metrics JSON invalid: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_metrics_json.py <path>")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(str(err))
    if doc.get("schema") != "topodb.metrics.v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"missing section {section!r}")
    for name in EXPECTED_COUNTERS:
        if name not in doc["counters"]:
            fail(f"missing counter {name!r}")
        if not isinstance(doc["counters"][name], int):
            fail(f"counter {name!r} is not an integer")
    if doc["counters"]["pipeline.items"] <= 0:
        fail("pipeline.items is not positive")
    for name in EXPECTED_HISTOGRAMS:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict):
            fail(f"missing histogram {name!r}")
        for field in HISTOGRAM_FIELDS:
            if not isinstance(hist.get(field), (int, float)):
                fail(f"histogram {name!r} missing field {field!r}")
        if hist["count"] > 0 and hist["min"] > hist["max"]:
            fail(f"histogram {name!r} has min > max")
    print(
        f"metrics JSON OK: {len(doc['counters'])} counters, "
        f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms"
    )


if __name__ == "__main__":
    main()
