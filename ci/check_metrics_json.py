#!/usr/bin/env python3
"""Validates a MetricsRegistry JSON export (schema topodb.metrics.v1/v2).

Usage: check_metrics_json.py <path> [--require-semcache]

CI archives the per-stage timing export produced by bench_pipeline_batch
(TOPODB_METRICS_JSON=<path>) and fails if the file is not well-formed JSON,
declares an unknown schema, or is missing the per-stage instrumentation
the serving path is supposed to emit. Both schema versions are accepted:
v2 adds the interpolated "p95" histogram field, which is required when
the export declares v2.

--require-semcache switches the expected series to the query planner /
semantic-cache instrumentation (bench_query_plan's registry does not run
the ingest pipeline, so the pipeline.* series are absent there): counters
semcache.{hits,misses,evictions,insertions} and planner.plans, gauges
semcache.{entries,bytes}, and the planner.plan_us histogram.
"""
import json
import sys


ACCEPTED_SCHEMAS = ["topodb.metrics.v1", "topodb.metrics.v2"]
EXPECTED_COUNTERS = [
    "pipeline.items",
    "pipeline.cache_hits",
    "pipeline.cache_misses",
    "arrangement.builds",
]
EXPECTED_HISTOGRAMS = [
    "pipeline.arrangement_us",
    "pipeline.extract_us",
    "pipeline.canonical_us",
    "pipeline.batch_us",
]
SEMCACHE_COUNTERS = [
    "semcache.hits",
    "semcache.misses",
    "semcache.evictions",
    "semcache.insertions",
    "planner.plans",
]
SEMCACHE_GAUGES = [
    "semcache.entries",
    "semcache.bytes",
]
SEMCACHE_HISTOGRAMS = [
    "planner.plan_us",
]
HISTOGRAM_FIELDS_V1 = ["count", "sum", "min", "max", "mean", "p50", "p90", "p99"]
HISTOGRAM_FIELDS_V2 = HISTOGRAM_FIELDS_V1 + ["p95"]


def fail(message):
    print(f"metrics JSON invalid: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    args = [a for a in sys.argv[1:] if a != "--require-semcache"]
    require_semcache = "--require-semcache" in sys.argv[1:]
    if len(args) != 1:
        fail("usage: check_metrics_json.py <path> [--require-semcache]")
    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(str(err))
    schema = doc.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        fail(f"unexpected schema {schema!r} (accepted: {ACCEPTED_SCHEMAS})")
    histogram_fields = (
        HISTOGRAM_FIELDS_V2 if schema == "topodb.metrics.v2" else HISTOGRAM_FIELDS_V1
    )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"missing section {section!r}")
    expected_counters = SEMCACHE_COUNTERS if require_semcache else EXPECTED_COUNTERS
    expected_histograms = (
        SEMCACHE_HISTOGRAMS if require_semcache else EXPECTED_HISTOGRAMS
    )
    for name in expected_counters:
        if name not in doc["counters"]:
            fail(f"missing counter {name!r}")
        if not isinstance(doc["counters"][name], int):
            fail(f"counter {name!r} is not an integer")
    if require_semcache:
        for name in SEMCACHE_GAUGES:
            if not isinstance(doc["gauges"].get(name), (int, float)):
                fail(f"missing gauge {name!r}")
        if doc["counters"]["semcache.hits"] <= 0:
            fail("semcache.hits is not positive")
        if doc["counters"]["planner.plans"] <= 0:
            fail("planner.plans is not positive")
    else:
        if doc["counters"]["pipeline.items"] <= 0:
            fail("pipeline.items is not positive")
    for name in expected_histograms:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict):
            fail(f"missing histogram {name!r}")
        for field in histogram_fields:
            if not isinstance(hist.get(field), (int, float)):
                fail(f"histogram {name!r} missing field {field!r}")
        if hist["count"] > 0 and hist["min"] > hist["max"]:
            fail(f"histogram {name!r} has min > max")
    print(
        f"metrics JSON OK ({schema}): {len(doc['counters'])} counters, "
        f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms"
    )


if __name__ == "__main__":
    main()
