// End-to-end tests for the TopoDB serving layer: every opcode against a
// live loopback server compared with in-process library results, session
// behavior on malformed frames, deadline propagation over the wire,
// admission-queue shedding under overload, and graceful drain. This
// suite also runs under TSan (ci/run_ci.sh) alongside concurrency_test.

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/client/client.h"
#include "src/invariant/canonical.h"
#include "src/query/eval.h"
#include "src/region/fixtures.h"
#include "src/region/io.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

// A query that enumerates far past any realistic budget on a 3x3 grid:
// ~250ms of work before the candidate cap, so a 1ms budget is guaranteed
// to trip mid-evaluation rather than win the race.
constexpr char kPathologicalQuery[] =
    "forall region r . exists region s . not connect(r, s)";

std::string GridText() {
  auto grid = RectGridInstance(3, 3);
  EXPECT_TRUE(grid.ok());
  return WriteInstanceText(*grid);
}

TopoDbClient ConnectOrDie(const TopoDbServer& server) {
  auto client = TopoDbClient::Connect(server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return *std::move(client);
}

TEST(ServerTest, PingAndMetricsRoundTrip) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TopoDbClient client = ConnectOrDie(server);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping(5000).ok());  // A budget on a cheap call is fine.

  const auto json = client.Metrics();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"topodb.metrics.v2\""), std::string::npos);
  EXPECT_NE(json->find("server.requests"), std::string::npos);

  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServerTest, ComputeInvariantMatchesLocalLibrary) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const SpatialInstance instance = Fig1aInstance();
  const auto remote = client.ComputeInvariant(WriteInstanceText(instance));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  const auto local = TopologicalInvariant::Compute(instance);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*remote, local->canonical());
}

TEST(ServerTest, BatchKeepsPerItemResultsAligned) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const std::vector<std::string> texts = {
      WriteInstanceText(Fig1aInstance()),
      "region garbage { this is not the text format }",
      WriteInstanceText(NestedInstance()),
  };
  const auto results = client.BatchInvariants(texts);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);

  const auto local_a = TopologicalInvariant::Compute(Fig1aInstance());
  const auto local_c = TopologicalInvariant::Compute(NestedInstance());
  ASSERT_TRUE(local_a.ok() && local_c.ok());
  ASSERT_TRUE((*results)[0].ok());
  EXPECT_EQ((*results)[0].value(), local_a->canonical());
  EXPECT_FALSE((*results)[1].ok());  // The bad item fails alone, in place.
  ASSERT_TRUE((*results)[2].ok());
  EXPECT_EQ((*results)[2].value(), local_c->canonical());
}

TEST(ServerTest, EvalQueryMatchesLocalEngine) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const SpatialInstance instance = Fig1dInstance();
  const std::string text = WriteInstanceText(instance);
  auto engine = QueryEngine::Build(instance);
  ASSERT_TRUE(engine.ok());

  for (const char* query :
       {"exists region r . exists region s . inside(r, s)",
        "forall region r . connect(r, r)",
        "exists region r . forall region s . overlap(r, s)"}) {
    const auto remote = client.EvalQuery(text, query);
    ASSERT_TRUE(remote.ok()) << query << ": " << remote.status().ToString();
    const auto local = engine->Evaluate(query, EvalOptions{});
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(*remote, *local) << query;
  }

  // A malformed sentence fails the request without hurting the session.
  EXPECT_EQ(client.EvalQuery(text, "exists banana . !").status().code(),
            StatusCode::kParseError);
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, IsoCheckMatchesTheoremThreeFour) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const std::string fig7a = WriteInstanceText(Fig7aInstance());
  const std::string fig7a_prime = WriteInstanceText(Fig7aPrimeInstance());

  auto same = client.IsoCheck(fig7a, fig7a);
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_TRUE(*same);

  // Fig 7(a) vs 7(a'): the paper's showcase pair — isomorphic graphs but
  // distinct invariants (the mirrored component flips orientation).
  auto different = client.IsoCheck(fig7a, fig7a_prime);
  ASSERT_TRUE(different.ok());
  EXPECT_FALSE(*different);
}

// Malformed frames: recoverable ones (unknown opcode on a well-formed
// header) keep the session; unparseable ones (bad magic) close it — but
// the server itself always survives for new connections.
TEST(ServerTest, UnknownOpcodeIsRecoverable) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  // Drive a raw socket beside the library client so we can send bytes the
  // client class would never produce.
  FrameHeader header;
  header.opcode = 42;  // Well-formed header, meaningless opcode.
  header.request_id = 9;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string frame = EncodeFrame(header, "");
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  // The server answers Unsupported and keeps the session: a subsequent
  // well-formed PING on the same socket succeeds.
  std::string response(kWireHeaderBytes, '\0');
  size_t got = 0;
  while (got < response.size()) {
    const ssize_t n = ::recv(fd, response.data() + got,
                             response.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<size_t>(n);
  }
  const auto decoded = DecodeFrameHeader(response);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 9u);
  // Drain the error payload, then ping on the same connection.
  std::string payload(decoded->payload_len, '\0');
  got = 0;
  while (got < payload.size()) {
    const ssize_t n =
        ::recv(fd, payload.data() + got, payload.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<size_t>(n);
  }
  const auto error = DecodeResponsePayload(payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->status.code(), StatusCode::kUnsupported);

  FrameHeader ping;
  ping.opcode = static_cast<uint16_t>(Opcode::kPing);
  ping.request_id = 10;
  const std::string ping_frame = EncodeFrame(ping, "");
  ASSERT_EQ(::send(fd, ping_frame.data(), ping_frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(ping_frame.size()));
  got = 0;
  while (got < response.size()) {
    const ssize_t n = ::recv(fd, response.data() + got,
                             response.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<size_t>(n);
  }
  const auto pong = DecodeFrameHeader(response);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->opcode,
            static_cast<uint16_t>(Opcode::kPing) | kWireResponseBit);
  ::close(fd);

  // The library client on its own session was never disturbed.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, GarbageBytesCloseTheSessionButNotTheServer) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string garbage(64, 'X');  // No valid magic anywhere.
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  // The server replies with an error frame and/or closes; either way the
  // connection reaches EOF instead of hanging.
  char buf[256];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);

  // Fresh sessions still work: the protocol error was contained.
  TopoDbClient client = ConnectOrDie(server);
  EXPECT_TRUE(client.Ping().ok());
}

// The acceptance test for end-to-end deadline propagation: a 1ms budget
// on a pathological EVAL_QUERY dies with DeadlineExceeded over the wire
// while a concurrent cheap request on the same server completes.
TEST(ServerTest, DeadlinePropagatesWhileCheapRequestsComplete) {
  ServerOptions options;
  options.num_workers = 2;  // Both requests must run concurrently.
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string grid = GridText();

  std::atomic<bool> cheap_ok{false};
  std::thread cheap([&] {
    auto client = TopoDbClient::Connect(server.port());
    if (!client.ok()) return;
    // A cheap query with no budget, issued while the pathological one is
    // (briefly) burning its 1ms.
    const auto verdict =
        client->EvalQuery(WriteInstanceText(Fig1dInstance()),
                          "forall region r . connect(r, r)");
    cheap_ok = verdict.ok();
  });

  TopoDbClient client = ConnectOrDie(server);
  const auto doomed = client.EvalQuery(grid, kPathologicalQuery, 1);
  cheap.join();

  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), StatusCode::kDeadlineExceeded)
      << doomed.status().ToString();
  EXPECT_TRUE(cheap_ok.load());

  // The budget killed one evaluation, not the server: the same session
  // immediately serves the same query unbudgeted (it terminates via the
  // engine's own enumeration cap, not a deadline).
  const auto unbudgeted = client.EvalQuery(grid, kPathologicalQuery);
  EXPECT_NE(unbudgeted.status().code(), StatusCode::kDeadlineExceeded);

  EXPECT_TRUE(server.Shutdown().ok());
}

// Overload: one worker, queue bound 1, a stream of slow queries. The
// queue fills while the worker grinds, so later arrivals shed with
// kUnavailable — and every request that *was* admitted still gets its
// own answer (OK or an individual DeadlineExceeded).
TEST(ServerTest, OverloadShedsWithUnavailable) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  options.drain_timeout = std::chrono::milliseconds(10000);
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string grid = GridText();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 3;
  std::atomic<int> answered{0};
  std::atomic<int> shed{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto client = TopoDbClient::Connect(server.port());
      if (!client.ok()) {
        ++unexpected;
        return;
      }
      for (int r = 0; r < kRequestsPerThread; ++r) {
        // ~250ms of work against a 2s budget: admitted requests finish
        // (possibly DeadlineExceeded under queue wait), shed ones don't.
        const auto verdict = client->EvalQuery(grid, kPathologicalQuery, 2000);
        if (verdict.ok() ||
            verdict.status().code() == StatusCode::kResourceExhausted ||
            verdict.status().code() == StatusCode::kDeadlineExceeded) {
          ++answered;
        } else if (verdict.status().code() == StatusCode::kUnavailable) {
          ++shed;
        } else {
          ++unexpected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every request got exactly one terminal outcome...
  EXPECT_EQ(answered + shed, kThreads * kRequestsPerThread);
  EXPECT_EQ(unexpected, 0);
  // ...and with 12 slow requests against capacity 2 (1 worker + 1 queue
  // slot), backpressure must actually have fired.
  EXPECT_GT(shed.load(), 0);

  EXPECT_TRUE(server.Shutdown().ok());
  // The shed counter made it into the registry.
  const auto shed_metric = server.metrics().ExportText();
  EXPECT_NE(shed_metric.find("server.shed"), std::string::npos);
}

// The shed response names the admission pressure that caused it: a
// router or operator reading "queue full (1/1)" knows the backend is
// alive and saturated (backpressure), not dead (failover). The message
// is part of the protocol surface — the shard router keys "overloaded,
// do not reroute" on the fact that this is a server-sent Unavailable.
TEST(ServerTest, ShedMessagePinsQueueContext) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  options.drain_timeout = std::chrono::milliseconds(10000);
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string grid = GridText();

  // Occupy the single worker, then the single queue slot.
  std::thread busy([&] {
    auto c = TopoDbClient::Connect(server.port());
    if (c.ok()) (void)c->EvalQuery(grid, kPathologicalQuery);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread queued([&] {
    auto c = TopoDbClient::Connect(server.port());
    if (c.ok()) (void)c->EvalQuery(grid, kPathologicalQuery);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  TopoDbClient client = ConnectOrDie(server);
  const auto shed = client.EvalQuery(grid, kPathologicalQuery);
  ASSERT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status().ToString();
  EXPECT_EQ(shed.status().message(), "queue full (1/1)");
  // Server-sent, not transport: a router must treat it as backpressure.
  EXPECT_FALSE(TopoDbClient::IsTransportError(shed.status()));

  busy.join();
  queued.join();
  EXPECT_TRUE(server.Shutdown().ok());
}

// The PING body advertises the serving state and admission bounds — the
// one-round-trip health probe the shard router's HealthChecker runs.
TEST(ServerTest, HealthPingReportsServingStateAndQueueBound) {
  ServerOptions options;
  options.max_queue_depth = 7;
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);
  const auto pong = client.HealthPing();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->state, kPingStateServing);
  EXPECT_EQ(pong->queue_bound, 7u);
  EXPECT_EQ(pong->queue_depth, 0u);
  EXPECT_TRUE(server.Shutdown().ok());
}

// While draining, an existing session can still ask PING and learns the
// server is going away (state = draining) instead of being cut off —
// what lets a health checker distinguish "drain in progress, stop
// routing here" from "dead, failover now".
TEST(ServerTest, DrainingServerAnswersPingWithDrainingState) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 4;
  options.drain_timeout = std::chrono::milliseconds(10000);
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string grid = GridText();

  // Pre-connect the observer: drain closes the listener first, so only
  // an existing session can ask.
  TopoDbClient observer = ConnectOrDie(server);

  // Hold the drain window open with slow admitted work.
  std::thread busy([&] {
    auto c = TopoDbClient::Connect(server.port());
    if (c.ok()) (void)c->EvalQuery(grid, kPathologicalQuery);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread drainer([&] { EXPECT_TRUE(server.Shutdown().ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const auto pong = observer.HealthPing();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->state, kPingStateDraining);

  // Non-PING work is refused while draining — server-sent, not transport.
  const auto refused = observer.EvalQuery(grid, kPathologicalQuery);
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(TopoDbClient::IsTransportError(refused.status()));

  busy.join();
  drainer.join();
}

// Graceful drain: shutdown races a burst of in-flight slow requests.
// Every admitted request is answered — outcomes are confined to
// {OK/ResourceExhausted, DeadlineExceeded (cancelled straggler),
// Unavailable (refused while draining)}; nothing hangs, nothing gets a
// torn connection or Internal error.
TEST(ServerTest, GracefulDrainAnswersEverything) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 8;
  options.drain_timeout = std::chrono::milliseconds(50);  // Force cancels.
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string grid = GridText();

  constexpr int kThreads = 4;
  std::atomic<int> clean{0};
  std::atomic<int> dirty{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto client = TopoDbClient::Connect(server.port());
      if (!client.ok()) {
        // Connection refused after the listener closed is a clean outcome
        // for a request that was never sent.
        ++clean;
        return;
      }
      for (int r = 0; r < 2; ++r) {
        const auto verdict = client->EvalQuery(grid, kPathologicalQuery);
        const StatusCode code = verdict.ok() ? StatusCode::kOk
                                             : verdict.status().code();
        switch (code) {
          case StatusCode::kOk:
          case StatusCode::kResourceExhausted:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kUnavailable:
            ++clean;
            break;
          default:
            ++dirty;
            break;
        }
        if (!verdict.ok() &&
            verdict.status().code() == StatusCode::kUnavailable) {
          return;  // Draining — the session may be closing underneath us.
        }
      }
    });
  }

  // Let the burst land, then shut down while requests are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(server.Shutdown().ok());
  for (auto& t : threads) t.join();

  EXPECT_EQ(dirty.load(), 0);
  EXPECT_GT(clean.load(), 0);
}

std::string TempCatalogDir() {
  std::string tmpl = testing::TempDir() + "topodb_server_cat_XXXXXX";
  EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

TEST(ServerTest, CatalogServingMatchesTheTextPathByteForByte) {
  const std::string dir = TempCatalogDir();
  MetricsRegistry metrics;  // Shared, as topodb_server --catalog wires it.
  CatalogOptions catalog_options;
  catalog_options.directory = dir;
  catalog_options.metrics = &metrics;
  auto catalog = Catalog::Open(catalog_options);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  ServerOptions options;
  options.catalog = catalog->get();
  options.metrics = &metrics;
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const std::string text = WriteInstanceText(Fig1aInstance());
  const auto loaded = client.Load("fig1a", text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded->entry_id, 0u);
  EXPECT_GT(loaded->file_bytes, 0u);

  // LIST and DESCRIBE see the ingested entry.
  const auto listing = client.List();
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "fig1a");
  EXPECT_EQ((*listing)[0].entry_id, loaded->entry_id);
  const auto described = client.Describe("fig1a");
  ASSERT_TRUE(described.ok()) << described.status().ToString();
  EXPECT_EQ(described->entry_id, loaded->entry_id);
  EXPECT_EQ(described->num_regions, Fig1aInstance().size());
  EXPECT_GT(described->num_faces, 0u);
  EXPECT_GT(described->canonical_bytes, 0u);

  // The acceptance bar: a catalog-name request returns byte-identical
  // results to the inline-text request, for every opcode that takes a
  // reference.
  const auto by_name = client.ComputeInvariant(InstanceRef::Name("fig1a"));
  const auto by_text = client.ComputeInvariant(text);
  ASSERT_TRUE(by_name.ok()) << by_name.status().ToString();
  ASSERT_TRUE(by_text.ok());
  EXPECT_EQ(*by_name, *by_text);

  const auto batch = client.BatchInvariants(std::vector<InstanceRef>{
      InstanceRef::Name("fig1a"), InstanceRef::Text(text)});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  ASSERT_TRUE((*batch)[0].ok() && (*batch)[1].ok());
  EXPECT_EQ((*batch)[0].value(), (*batch)[1].value());

  const auto eval_name =
      client.EvalQuery(InstanceRef::Name("fig1a"), "connect(A, B)");
  const auto eval_text = client.EvalQuery(text, "connect(A, B)");
  ASSERT_TRUE(eval_name.ok()) << eval_name.status().ToString();
  ASSERT_TRUE(eval_text.ok());
  EXPECT_EQ(*eval_name, *eval_text);

  const auto iso =
      client.IsoCheck(InstanceRef::Name("fig1a"), InstanceRef::Text(text));
  ASSERT_TRUE(iso.ok()) << iso.status().ToString();
  EXPECT_TRUE(*iso);

  // The catalog serving path shows up in the metrics export.
  const auto json = client.Metrics();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("catalog.hits"), std::string::npos);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServerTest, UnknownCatalogNameIsUniformNotFoundAcrossOpcodes) {
  const std::string dir = TempCatalogDir();
  CatalogOptions catalog_options;
  catalog_options.directory = dir;
  auto catalog = Catalog::Open(catalog_options);
  ASSERT_TRUE(catalog.ok());
  ServerOptions options;
  options.catalog = catalog->get();
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const std::string text = WriteInstanceText(Fig1aInstance());
  const InstanceRef ghost = InstanceRef::Name("ghost");
  auto expect_unknown = [](const Status& status) {
    EXPECT_EQ(status.code(), StatusCode::kNotFound) << status.ToString();
    EXPECT_NE(status.message().find("unknown instance 'ghost'"),
              std::string::npos)
        << status.ToString();
  };
  expect_unknown(client.ComputeInvariant(ghost).status());
  expect_unknown(client.EvalQuery(ghost, "connect(A, B)").status());
  expect_unknown(client.IsoCheck(ghost, InstanceRef::Text(text)).status());
  expect_unknown(client.IsoCheck(InstanceRef::Text(text), ghost).status());
  expect_unknown(client.Describe("ghost").status());
  const auto batch = client.BatchInvariants(
      std::vector<InstanceRef>{ghost, InstanceRef::Text(text)});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  expect_unknown((*batch)[0].status());
  EXPECT_TRUE((*batch)[1].ok());  // The healthy item still succeeds.
}

TEST(ServerTest, CatalogFreeServerUnifiesNameErrorsAndRefusesLoad) {
  TopoDbServer server(ServerOptions{});  // No catalog configured.
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  // Name lookups fail with the same NotFound shape as a configured-but-
  // missing name, so clients need exactly one error path.
  const auto compute = client.ComputeInvariant(InstanceRef::Name("ghost"));
  ASSERT_FALSE(compute.ok());
  EXPECT_EQ(compute.status().code(), StatusCode::kNotFound);
  EXPECT_NE(compute.status().message().find("unknown instance 'ghost'"),
            std::string::npos);

  const auto loaded = client.Load("x", WriteInstanceText(Fig1aInstance()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnsupported);

  const auto listing = client.List();
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  EXPECT_TRUE(listing->empty());
}

TEST(ServerTest, RestartedServerServesTheCatalogWithoutReingest) {
  const std::string dir = TempCatalogDir();
  const std::string text = WriteInstanceText(Fig1aInstance());
  uint64_t entry_id = 0;
  std::string canonical;
  {
    CatalogOptions catalog_options;
    catalog_options.directory = dir;
    auto catalog = Catalog::Open(catalog_options);
    ASSERT_TRUE(catalog.ok());
    ServerOptions options;
    options.catalog = catalog->get();
    TopoDbServer server(options);
    ASSERT_TRUE(server.Start().ok());
    TopoDbClient client = ConnectOrDie(server);
    const auto loaded = client.Load("persist", text);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    entry_id = loaded->entry_id;
    const auto canon = client.ComputeInvariant(InstanceRef::Name("persist"));
    ASSERT_TRUE(canon.ok());
    canonical = *canon;
    ASSERT_TRUE(server.Shutdown().ok());
  }
  // A brand-new catalog + server against the same directory: the entry is
  // served from the mapped store file, no LOAD needed, same bytes.
  CatalogOptions catalog_options;
  catalog_options.directory = dir;
  auto catalog = Catalog::Open(catalog_options);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ServerOptions options;
  options.catalog = catalog->get();
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);
  const auto described = client.Describe("persist");
  ASSERT_TRUE(described.ok()) << described.status().ToString();
  EXPECT_EQ(described->entry_id, entry_id);
  const auto canon = client.ComputeInvariant(InstanceRef::Name("persist"));
  ASSERT_TRUE(canon.ok());
  EXPECT_EQ(*canon, canonical);
  const auto by_text = client.ComputeInvariant(text);
  ASSERT_TRUE(by_text.ok());
  EXPECT_EQ(*canon, *by_text);
}

TEST(ServerTest, LoadValidatesNamesAndTextOverTheWire) {
  const std::string dir = TempCatalogDir();
  CatalogOptions catalog_options;
  catalog_options.directory = dir;
  auto catalog = Catalog::Open(catalog_options);
  ASSERT_TRUE(catalog.ok());
  ServerOptions options;
  options.catalog = catalog->get();
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  EXPECT_EQ(client.Load("a/b", "A: (0 0, 1 0, 1 1)\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Load("ok", "garbage").status().code(),
            StatusCode::kParseError);
  const auto listing = client.List();
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing->empty());  // Nothing was persisted.
}

TEST(ServerTest, ReingestInvalidatesSemanticVerdicts) {
  // ingest -> evaluate -> re-ingest (same name, new bytes) -> evaluate:
  // the second verdict must reflect the new instance, not the cached
  // verdict of the old one. Identity is the entry id (payload checksum),
  // so the re-ingest routes around every stale engine and verdict.
  const std::string dir = TempCatalogDir();
  MetricsRegistry metrics;
  CatalogOptions catalog_options;
  catalog_options.directory = dir;
  catalog_options.metrics = &metrics;
  auto catalog = Catalog::Open(catalog_options);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  ServerOptions options;
  options.catalog = catalog->get();
  options.metrics = &metrics;
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);

  const char* query = "connect(A, B)";
  const SpatialInstance before = Fig1aInstance();
  const SpatialInstance after = DisjointPairInstance();
  // Local ground truth; the fixtures are chosen so the verdict flips.
  QueryEngine engine_before = *QueryEngine::Build(before);
  QueryEngine engine_after = *QueryEngine::Build(after);
  const bool truth_before = *engine_before.Evaluate(query);
  const bool truth_after = *engine_after.Evaluate(query);
  ASSERT_NE(truth_before, truth_after);

  ASSERT_TRUE(client.Load("subject", WriteInstanceText(before)).ok());
  // Twice, so the second answer is served from the semantic cache.
  for (int i = 0; i < 2; ++i) {
    const auto verdict = client.EvalQuery(InstanceRef::Name("subject"), query);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_EQ(*verdict, truth_before);
  }

  ASSERT_TRUE(client.Load("subject", WriteInstanceText(after)).ok());
  const auto verdict = client.EvalQuery(InstanceRef::Name("subject"), query);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(*verdict, truth_after);

  // The warm repeat hit the cache, and the serving path exports the
  // semcache counters.
  EXPECT_GE(metrics.counter("semcache.hits")->value(), 1u);
  EXPECT_GE(metrics.counter("semcache.misses")->value(), 2u);
  const auto json = client.Metrics();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("semcache.hits"), std::string::npos);
  EXPECT_NE(json->find("enginecache.hits"), std::string::npos);
  EXPECT_NE(json->find("planner.plans"), std::string::npos);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServerTest, EquivalentQuerySpellingsShareOneServerCacheEntry) {
  const std::string dir = TempCatalogDir();
  MetricsRegistry metrics;
  CatalogOptions catalog_options;
  catalog_options.directory = dir;
  auto catalog = Catalog::Open(catalog_options);
  ASSERT_TRUE(catalog.ok());

  ServerOptions options;
  options.catalog = catalog->get();
  options.metrics = &metrics;
  TopoDbServer server(options);
  ASSERT_TRUE(server.Start().ok());
  TopoDbClient client = ConnectOrDie(server);
  ASSERT_TRUE(
      client.Load("fig1a", WriteInstanceText(Fig1aInstance())).ok());

  // Distinct spellings, one canonical form: only the first evaluates.
  const char* spellings[] = {
      "connect(A, B) and connect(A, C)",
      "connect(C, A) and connect(B, A)",
      "not (connect(A, B) implies not connect(A, C))",
  };
  std::optional<bool> first;
  for (const char* spelling : spellings) {
    const auto verdict =
        client.EvalQuery(InstanceRef::Name("fig1a"), spelling);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    if (!first) first = *verdict;
    EXPECT_EQ(*verdict, *first) << spelling;
  }
  EXPECT_EQ(metrics.counter("semcache.misses")->value(), 1u);
  EXPECT_EQ(metrics.counter("semcache.hits")->value(), 2u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServerTest, ShutdownIsIdempotentAndStartValidatesOptions) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Shutdown().ok());
  EXPECT_TRUE(server.Shutdown().ok());  // Second call is a no-op.

  ServerOptions bad;
  bad.num_workers = -3;
  TopoDbServer invalid(bad);
  EXPECT_EQ(invalid.Start().code(), StatusCode::kInvalidArgument);

  ServerOptions zero_queue;
  zero_queue.max_queue_depth = 0;
  TopoDbServer no_queue(zero_queue);
  EXPECT_EQ(no_queue.Start().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace topodb
