// EngineCache tests: hit/miss accounting, identity of cached engines,
// invalidation by key (entry id and format version), and that build
// failures are not cached.

#include "src/pipeline/engine_cache.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace topodb {
namespace {

constexpr char kText[] =
    "A: (0 0, 4 0, 4 4, 0 4)\n"
    "B: (1 1, 3 1, 3 2, 1 2)\n";

TEST(EngineCacheTest, SecondLookupIsAHitOnTheSameEngine) {
  EngineCache cache;
  const auto first = cache.GetOrBuild(1, 1, kText);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto second = cache.GetOrBuild(1, 1, kText);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // Same engine object, not a copy.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EngineCacheTest, EntryIdAndFormatVersionBothKeyTheCache) {
  EngineCache cache;
  ASSERT_TRUE(cache.GetOrBuild(1, 1, kText).ok());
  // A re-ingest changes the entry id; a format migration changes the
  // version. Either way the old engine must not be served.
  ASSERT_TRUE(cache.GetOrBuild(2, 1, kText).ok());
  ASSERT_TRUE(cache.GetOrBuild(1, 2, kText).ok());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(EngineCacheTest, BuildFailureIsNotCached) {
  EngineCache cache;
  const auto bad = cache.GetOrBuild(9, 1, "not an instance");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(cache.size(), 0u);
  // The same key with good text afterwards builds normally (the failure
  // did not poison the slot).
  const auto good = cache.GetOrBuild(9, 1, kText);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
}

TEST(EngineCacheTest, CachedEngineAnswersQueries) {
  EngineCache cache;
  const auto engine = cache.GetOrBuild(3, 1, kText);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const auto held = *engine;
  cache.Clear();  // A held engine survives eviction.
  EXPECT_EQ(cache.size(), 0u);
  const auto verdict = held->Evaluate("connect(A, B)");
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
}

}  // namespace
}  // namespace topodb
