#include <gtest/gtest.h>

#include "src/region/fixtures.h"
#include "src/region/instance.h"
#include "src/region/region.h"
#include "src/region/transform.h"

namespace topodb {
namespace {

TEST(RegionTest, MakeRectProducesRectClass) {
  Result<Region> r = Region::MakeRect(Point(0, 0), Point(4, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->declared_class(), RegionClass::kRect);
  EXPECT_EQ(r->boundary().size(), 4u);
  EXPECT_TRUE(r->boundary().IsCounterClockwise());
}

TEST(RegionTest, MakeRectRejectsEmpty) {
  EXPECT_FALSE(Region::MakeRect(Point(4, 0), Point(0, 2)).ok());
  EXPECT_FALSE(Region::MakeRect(Point(0, 0), Point(0, 2)).ok());
}

TEST(RegionTest, MakeRejectsClassMismatch) {
  Polygon tri({Point(0, 0), Point(4, 0), Point(2, 3)});
  EXPECT_FALSE(Region::Make(tri, RegionClass::kRect).ok());
  EXPECT_FALSE(Region::Make(tri, RegionClass::kRectStar).ok());
  EXPECT_TRUE(Region::Make(tri, RegionClass::kPoly).ok());
}

TEST(RegionTest, MakeRejectsNonSimple) {
  Polygon bowtie({Point(0, 0), Point(2, 2), Point(2, 0), Point(0, 2)});
  EXPECT_FALSE(Region::Make(bowtie, RegionClass::kPoly).ok());
}

TEST(RegionTest, ClassifyHierarchy) {
  Polygon rect({Point(0, 0), Point(4, 0), Point(4, 2), Point(0, 2)});
  EXPECT_EQ(Region::Classify(rect), RegionClass::kRect);
  Polygon ell({Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2),
               Point(2, 4), Point(0, 4)});
  EXPECT_EQ(Region::Classify(ell), RegionClass::kRectStar);
  Polygon tri({Point(0, 0), Point(4, 0), Point(2, 3)});
  EXPECT_EQ(Region::Classify(tri), RegionClass::kPoly);
}

TEST(RegionTest, LocateOpenRegionSemantics) {
  Region r = *Region::MakeRect(Point(0, 0), Point(4, 4));
  EXPECT_EQ(r.Locate(Point(2, 2)), PointLocation::kInterior);
  EXPECT_EQ(r.Locate(Point(0, 2)), PointLocation::kBoundary);
  EXPECT_EQ(r.Locate(Point(-1, 2)), PointLocation::kExterior);
}

TEST(RegionClassNameTest, AllNames) {
  EXPECT_STREQ(RegionClassName(RegionClass::kRect), "Rect");
  EXPECT_STREQ(RegionClassName(RegionClass::kRectStar), "Rect*");
  EXPECT_STREQ(RegionClassName(RegionClass::kPoly), "Poly");
  EXPECT_STREQ(RegionClassName(RegionClass::kAlg), "Alg");
  EXPECT_STREQ(RegionClassName(RegionClass::kDisc), "Disc");
}

TEST(InstanceTest, AddLookupRemove) {
  SpatialInstance instance;
  EXPECT_TRUE(
      instance.AddRegion("A", *Region::MakeRect(Point(0, 0), Point(1, 1)))
          .ok());
  EXPECT_FALSE(
      instance.AddRegion("A", *Region::MakeRect(Point(0, 0), Point(1, 1)))
          .ok());
  EXPECT_TRUE(instance.HasRegion("A"));
  EXPECT_TRUE(instance.ext("A").ok());
  EXPECT_FALSE(instance.ext("Z").ok());
  EXPECT_EQ(instance.names(), std::vector<std::string>{"A"});
  EXPECT_TRUE(instance.RemoveRegion("A").ok());
  EXPECT_FALSE(instance.RemoveRegion("A").ok());
  EXPECT_TRUE(instance.empty());
}

TEST(InstanceTest, RejectsNamesThatBreakSerialization) {
  SpatialInstance instance;
  Region rect = *Region::MakeRect(Point(0, 0), Point(1, 1));
  // ':' is the name/extent separator of the text format; control
  // characters break line framing; '#' starts a comment line; stray
  // blanks are stripped by the parser, breaking round trips.
  for (const char* bad : {"a:b", "a\nb", "a\tb", "", "#x", " x", "x "}) {
    EXPECT_FALSE(instance.AddRegion(bad, rect).ok()) << "'" << bad << "'";
    EXPECT_FALSE(ValidateRegionName(bad).ok()) << "'" << bad << "'";
  }
  // Interior blanks, punctuation and unicode are fine.
  for (const char* good : {"a b", "a,b", "R(1)", "zone_9"}) {
    EXPECT_TRUE(ValidateRegionName(good).ok()) << "'" << good << "'";
  }
  EXPECT_TRUE(instance.empty());
}

TEST(InstanceTest, NamesSorted) {
  SpatialInstance instance = Fig1aInstance();
  std::vector<std::string> expected = {"A", "B", "C"};
  EXPECT_EQ(instance.names(), expected);
}

TEST(InstanceTest, BoundingBox) {
  SpatialInstance instance = Fig1cInstance();
  Result<Box> box = instance.BoundingBox();
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->min, Point(0, -2));
  EXPECT_EQ(box->max, Point(12, 8));
  EXPECT_FALSE(SpatialInstance().BoundingBox().ok());
}

// --- Fixture sanity: the set-level facts the paper states about Fig 1. ---

PointLocation LocateIn(const SpatialInstance& inst, const std::string& name,
                       const Point& p) {
  return (*inst.ext(name))->Locate(p);
}

bool InteriorAll(const SpatialInstance& inst, const Point& p) {
  for (const auto& name : inst.names()) {
    if (LocateIn(inst, name, p) != PointLocation::kInterior) return false;
  }
  return true;
}

TEST(FixtureTest, Fig1aHasTripleIntersection) {
  SpatialInstance inst = Fig1aInstance();
  EXPECT_TRUE(InteriorAll(inst, Point(7, 5)));
}

TEST(FixtureTest, Fig1bPairwiseOverlapNoTriple) {
  SpatialInstance inst = Fig1bInstance();
  // Pairwise overlap witnesses.
  EXPECT_EQ(LocateIn(inst, "A", Point(10, 1)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "B", Point(10, 1)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "A", Point(2, 1)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "C", Point(2, 1)), PointLocation::kInterior);
  Point bc(Rational(13, 2), Rational(10));  // In the B/C crossing lens.
  EXPECT_EQ(LocateIn(inst, "B", bc), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "C", bc), PointLocation::kInterior);
  // No triple point on a probe grid.
  for (int x = -2; x <= 14; ++x) {
    for (int y = -2; y <= 14; ++y) {
      EXPECT_FALSE(InteriorAll(inst, Point(x, y)))
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(FixtureTest, Fig1cOverlap) {
  SpatialInstance inst = Fig1cInstance();
  EXPECT_EQ(LocateIn(inst, "A", Point(6, 3)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "B", Point(6, 3)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "A", Point(2, 7)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "B", Point(2, 7)), PointLocation::kExterior);
}

TEST(FixtureTest, Fig1dTwoLensesAndPocket) {
  SpatialInstance inst = Fig1dInstance();
  // Lens witnesses.
  EXPECT_TRUE(InteriorAll(inst, Point(3, 4)));
  EXPECT_TRUE(InteriorAll(inst, Point(11, 4)));
  // Between the lenses: inside A only.
  EXPECT_EQ(LocateIn(inst, "A", Point(7, 4)), PointLocation::kInterior);
  EXPECT_EQ(LocateIn(inst, "B", Point(7, 4)), PointLocation::kExterior);
  // The pocket: outside both, yet bounded.
  EXPECT_EQ(LocateIn(inst, "A", Point(7, 7)), PointLocation::kExterior);
  EXPECT_EQ(LocateIn(inst, "B", Point(7, 7)), PointLocation::kExterior);
}

TEST(FixtureTest, Fig7bDiamondsMeetOnlyAtOrigin) {
  SpatialInstance inst = Fig7bInstance();
  for (const auto& name : inst.names()) {
    EXPECT_EQ(LocateIn(inst, name, Point(0, 0)), PointLocation::kBoundary)
        << name;
  }
  // Interiors are pairwise disjoint: probe a few points.
  for (int x = -4; x <= 4; ++x) {
    for (int y = -4; y <= 4; ++y) {
      int count = 0;
      for (const auto& name : inst.names()) {
        if (LocateIn(inst, name, Point(x, y)) == PointLocation::kInterior) {
          ++count;
        }
      }
      EXPECT_LE(count, 1);
    }
  }
}

// --- Transforms ---

TEST(TransformTest, AffineBasics) {
  AffineTransform t = AffineTransform::Translation(Rational(2), Rational(3));
  EXPECT_EQ(t.Apply(Point(1, 1)), Point(3, 4));
  AffineTransform s = AffineTransform::Scale(Rational(2), Rational(1));
  EXPECT_EQ(s.Apply(Point(3, 5)), Point(6, 5));
  AffineTransform c = t.Compose(s);  // translate after scale
  EXPECT_EQ(c.Apply(Point(3, 5)), Point(8, 8));
  EXPECT_FALSE(AffineTransform::Make(1, 2, 0, 2, 4, 0).ok());  // Singular.
}

TEST(TransformTest, AffineMapsRectToParallelogram) {
  Region rect = *Region::MakeRect(Point(0, 0), Point(2, 2));
  AffineTransform shear = *AffineTransform::Make(1, 1, 0, 0, 1, 0);
  Result<Region> image = shear.ApplyToRegion(rect);
  ASSERT_TRUE(image.ok());
  // A sheared rectangle is no longer Rect (Fig 4: Rect not L-invariant).
  EXPECT_EQ(image->declared_class(), RegionClass::kPoly);
}

TEST(TransformTest, MonotonePl1D) {
  MonotonePl1D id;
  EXPECT_EQ(id.Apply(Rational(7, 3)), Rational(7, 3));
  // Increasing map with a slope change at x=0: x for x<=0, 2x for x>0.
  MonotonePl1D kink = *MonotonePl1D::Make(
      {Rational(-1), Rational(0), Rational(1)},
      {Rational(-1), Rational(0), Rational(2)});
  EXPECT_EQ(kink.Apply(Rational(-5)), Rational(-5));
  EXPECT_EQ(kink.Apply(Rational(1, 2)), Rational(1));
  EXPECT_EQ(kink.Apply(Rational(3)), Rational(6));
  // Decreasing map.
  MonotonePl1D dec = *MonotonePl1D::Make({Rational(0), Rational(1)},
                                         {Rational(10), Rational(8)});
  EXPECT_EQ(dec.Apply(Rational(2)), Rational(6));
  EXPECT_FALSE(dec.increasing());
  // Invalid: not strictly monotone.
  EXPECT_FALSE(
      MonotonePl1D::Make({Rational(0), Rational(1)}, {Rational(0), Rational(0)})
          .ok());
  EXPECT_FALSE(
      MonotonePl1D::Make({Rational(1), Rational(0)}, {Rational(0), Rational(1)})
          .ok());
}

TEST(TransformTest, SymmetryKeepsRectClass) {
  // Fig 4: Rect is S-invariant. A kinked monotone map on x keeps axis
  // alignment, so rectangles stay rectangles.
  MonotonePl1D kink = *MonotonePl1D::Make(
      {Rational(0), Rational(1), Rational(2)},
      {Rational(0), Rational(3), Rational(4)});
  SymmetryTransform sym(kink, MonotonePl1D(), /*swap_axes=*/false);
  Region rect = *Region::MakeRect(Point(0, 0), Point(2, 2));
  Result<Region> image = sym.ApplyToRegion(rect);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->declared_class(), RegionClass::kRect);
  // And the extent is what the map says: [0,2]x[0,2] -> [0,4]x[0,2].
  EXPECT_EQ(image->BoundingBox().max, Point(4, 2));
}

TEST(TransformTest, SymmetryWithSwapKeepsRectilinear) {
  MonotonePl1D id;
  SymmetryTransform swap(id, id, /*swap_axes=*/true);
  Polygon ell({Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2),
               Point(2, 4), Point(0, 4)});
  Region region = *Region::Make(ell, RegionClass::kRectStar);
  Result<Region> image = swap.ApplyToRegion(region);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->declared_class(), RegionClass::kRectStar);
}

TEST(TransformTest, SymmetryBendsNonAxisEdges) {
  // Fig 4: Poly is NOT S-invariant as a straight-line class, but our
  // piecewise-linear symmetry elements keep images polygonal by
  // subdividing at breakpoints. A diagonal edge crossing a kink becomes
  // two edges.
  MonotonePl1D kink = *MonotonePl1D::Make(
      {Rational(0), Rational(1), Rational(2)},
      {Rational(0), Rational(3), Rational(4)});
  SymmetryTransform sym(kink, MonotonePl1D(), /*swap_axes=*/false);
  Polygon tri({Point(0, 0), Point(2, 0), Point(2, 2)});
  Polygon image = sym.ApplyToPolygon(tri);
  // Hypotenuse from (2,2) to (0,0) crosses x==1: one extra vertex.
  EXPECT_EQ(image.size(), 4u);
  EXPECT_TRUE(image.Validate().ok());
}

TEST(TransformTest, TwoPieceLinearContinuityEnforced) {
  AffineTransform left = AffineTransform::Identity();
  // Right piece: x -> 2x - 1 matches identity at x == 1.
  AffineTransform right = *AffineTransform::Make(2, 0, -1, 0, 1, 0);
  Result<TwoPieceLinearTransform> good =
      TwoPieceLinearTransform::Make(Rational(1), left, right);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->Apply(Point(Rational(1, 2), Rational(0))),
            Point(Rational(1, 2), Rational(0)));
  EXPECT_EQ(good->Apply(Point(3, 5)), Point(5, 5));
  // Discontinuous pieces rejected.
  AffineTransform bad_right = *AffineTransform::Make(2, 0, 0, 0, 1, 0);
  EXPECT_FALSE(
      TwoPieceLinearTransform::Make(Rational(1), left, bad_right).ok());
  // Orientation-flipping pieces rejected.
  AffineTransform mirror = *AffineTransform::Make(-1, 0, 2, 0, 1, 0);
  EXPECT_FALSE(TwoPieceLinearTransform::Make(Rational(1), left, mirror).ok());
}

TEST(TransformTest, TwoPieceKeepsPolygonSimple) {
  AffineTransform left = AffineTransform::Identity();
  AffineTransform right = *AffineTransform::Make(3, 0, -2, 0, 1, 0);
  TwoPieceLinearTransform t =
      *TwoPieceLinearTransform::Make(Rational(1), left, right);
  Polygon tri({Point(0, 0), Point(4, 0), Point(4, 4)});
  Polygon image = t.ApplyToPolygon(tri);
  EXPECT_TRUE(image.Validate().ok());
  // Vertices beyond the seam get stretched: (4,0) -> (10,0).
  Box box = image.BoundingBox();
  EXPECT_EQ(box.max.x, Rational(10));
}

TEST(TransformTest, InstanceMappingPreservesNames) {
  SpatialInstance inst = Fig1aInstance();
  AffineTransform t = AffineTransform::Translation(Rational(100), Rational(0));
  Result<SpatialInstance> image = t.ApplyToInstance(inst);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->names(), inst.names());
  EXPECT_EQ((*image->ext("A"))->BoundingBox().min, Point(100, 0));
}

}  // namespace
}  // namespace topodb
