// Differential fuzz for BigInt's 64/128-bit small-value fast paths and the
// in-place compound assignments. The general limb algorithms are the
// oracle: SetBigIntFastPathEnabled(false) re-runs the exact same operation
// through them, and every result must match bit for bit (via ToString,
// which renders the canonical sign/magnitude form). Inputs concentrate on
// the limb-transition boundaries — 2^32, 2^64, 2^96, 2^128 plus/minus a few
// — where a fast path that mis-detects overflow would first diverge.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/bigint.h"
#include "src/base/rational.h"

namespace topodb {
namespace {

// Restores the (default-on) fast path even if a test fails mid-way.
class ScopedFastPath {
 public:
  explicit ScopedFastPath(bool enabled) { SetBigIntFastPathEnabled(enabled); }
  ~ScopedFastPath() { SetBigIntFastPathEnabled(true); }
};

// All values straddling the representation boundaries the fast paths
// branch on, both signs.
std::vector<BigInt> BoundaryValues() {
  std::vector<BigInt> out;
  out.push_back(BigInt(0));
  for (int k : {1, 5, 31, 32, 33, 52, 53, 63, 64, 65, 95, 96, 97, 127, 128,
                129, 160, 200}) {
    const BigInt p = BigInt(1).ShiftLeft(k);
    for (int64_t d : {-2, -1, 0, 1, 2}) {
      const BigInt v = p + BigInt(d);
      out.push_back(v);
      out.push_back(BigInt(0) - v);
    }
  }
  return out;
}

BigInt RandomValue(std::mt19937_64& rng) {
  // 1..5 limbs: spans strictly-inside-fast-path through just-beyond.
  const int limbs = 1 + static_cast<int>(rng() % 5);
  BigInt v(0);
  for (int i = 0; i < limbs; ++i) {
    v = v.ShiftLeft(32) + BigInt(static_cast<int64_t>(rng() & 0xffffffffu));
  }
  return (rng() & 1) ? BigInt(0) - v : v;
}

struct OpResults {
  std::string sum, diff, prod, quot, rem, gcd, shifted;
  int cmp = 0;
};

OpResults RunAll(const BigInt& a, const BigInt& b, int shift_bits) {
  OpResults r;
  r.sum = (a + b).ToString();
  r.diff = (a - b).ToString();
  r.prod = (a * b).ToString();
  if (!b.is_zero()) {
    BigInt q, m;
    BigInt::DivMod(a, b, &q, &m);
    r.quot = q.ToString();
    r.rem = m.ToString();
    // Division identity and C remainder semantics, independent of path.
    EXPECT_EQ((q * b + m).ToString(), a.ToString());
    EXPECT_LT(m.Abs().Compare(b.Abs()), 0);
    if (!m.is_zero()) {
      EXPECT_EQ(m.sign(), a.sign());
    }
    // Algorithm D against the retained shift-and-subtract oracle.
    BigInt qr, mr;
    BigInt::DivModReference(a, b, &qr, &mr);
    EXPECT_EQ(q.ToString(), qr.ToString()) << a << " / " << b;
    EXPECT_EQ(m.ToString(), mr.ToString()) << a << " % " << b;
  }
  r.gcd = BigInt::Gcd(a, b).ToString();
  r.shifted = a.ShiftLeft(shift_bits).ToString();
  r.cmp = a.Compare(b);
  return r;
}

void ExpectSameOnBothPaths(const BigInt& a, const BigInt& b,
                           std::mt19937_64& rng) {
  const int shift_bits = static_cast<int>(rng() % 140);
  ASSERT_TRUE(BigIntFastPathEnabled());
  const OpResults fast = RunAll(a, b, shift_bits);
  OpResults slow;
  {
    ScopedFastPath off(false);
    slow = RunAll(a, b, shift_bits);
  }
  EXPECT_EQ(fast.sum, slow.sum) << a << " + " << b;
  EXPECT_EQ(fast.diff, slow.diff) << a << " - " << b;
  EXPECT_EQ(fast.prod, slow.prod) << a << " * " << b;
  EXPECT_EQ(fast.quot, slow.quot) << a << " / " << b;
  EXPECT_EQ(fast.rem, slow.rem) << a << " % " << b;
  EXPECT_EQ(fast.gcd, slow.gcd) << "gcd(" << a << ", " << b << ")";
  EXPECT_EQ(fast.shifted, slow.shifted) << a << " << " << shift_bits;
  EXPECT_EQ(fast.cmp, slow.cmp) << a << " <=> " << b;
}

TEST(BigIntFastPathTest, BoundaryPairsMatchGeneralPath) {
  std::mt19937_64 rng(31);
  const std::vector<BigInt> values = BoundaryValues();
  for (const BigInt& a : values) {
    for (const BigInt& b : values) {
      ExpectSameOnBothPaths(a, b, rng);
    }
  }
}

TEST(BigIntFastPathTest, RandomPairsMatchGeneralPath) {
  std::mt19937_64 rng(32);
  for (int iter = 0; iter < 3000; ++iter) {
    ExpectSameOnBothPaths(RandomValue(rng), RandomValue(rng), rng);
  }
}

TEST(BigIntFastPathTest, PromotionAcrossLimbBoundaries) {
  // Repeated += 1 walks a value across 2^32 and 2^64; repeated doubling
  // walks the inline buffer to its spill point and beyond. Every step is
  // checked against a fresh binary-op evaluation on the general path.
  BigInt v = BigInt(1).ShiftLeft(32) - BigInt(3);
  for (int i = 0; i < 8; ++i) {
    BigInt expect;
    {
      ScopedFastPath off(false);
      expect = v + BigInt(1);
    }
    v += BigInt(1);
    EXPECT_EQ(v.ToString(), expect.ToString());
  }
  BigInt w = BigInt(1).ShiftLeft(64) - BigInt(3);
  for (int i = 0; i < 8; ++i) {
    w += BigInt(1);
  }
  EXPECT_EQ(w.ToString(), (BigInt(1).ShiftLeft(64) + BigInt(5)).ToString());
  BigInt d(3);
  for (int i = 0; i < 300; ++i) d *= BigInt(2);  // Far past inline capacity.
  EXPECT_EQ(d.ToString(), (BigInt(3).ShiftLeft(300)).ToString());
}

TEST(BigIntInPlaceTest, CompoundAssignmentsMatchBinaryOperators) {
  std::mt19937_64 rng(33);
  const std::vector<BigInt> boundary = BoundaryValues();
  for (int iter = 0; iter < 2000; ++iter) {
    const BigInt a = (iter % 3 == 0) ? boundary[rng() % boundary.size()]
                                     : RandomValue(rng);
    const BigInt b = (iter % 5 == 0) ? boundary[rng() % boundary.size()]
                                     : RandomValue(rng);
    BigInt s = a;
    s += b;
    EXPECT_EQ(s.ToString(), (a + b).ToString()) << a << " += " << b;
    BigInt d = a;
    d -= b;
    EXPECT_EQ(d.ToString(), (a - b).ToString()) << a << " -= " << b;
    BigInt p = a;
    p *= b;
    EXPECT_EQ(p.ToString(), (a * b).ToString()) << a << " *= " << b;
  }
}

TEST(BigIntInPlaceTest, SelfAliasingCompoundAssignments) {
  const std::vector<BigInt> values = BoundaryValues();
  for (const BigInt& v : values) {
    BigInt s = v;
    s += s;
    EXPECT_EQ(s.ToString(), (v + v).ToString()) << v;
    BigInt d = v;
    d -= d;
    EXPECT_TRUE(d.is_zero()) << v;
    BigInt p = v;
    p *= p;
    EXPECT_EQ(p.ToString(), (v * v).ToString()) << v;
  }
}

TEST(BigIntFastPathTest, LimbAccessorsMatchCanonicalForm) {
  // LimbCount/Limb (the expansion stage's view) must agree with the value:
  // reassembling sum(Limb(i) * 2^(32 i)) reproduces the magnitude, and
  // there is never a leading zero limb.
  std::mt19937_64 rng(34);
  for (int iter = 0; iter < 500; ++iter) {
    const BigInt v = RandomValue(rng);
    if (v.is_zero()) {
      EXPECT_EQ(v.LimbCount(), 0u);
      continue;
    }
    BigInt rebuilt(0);
    for (size_t i = v.LimbCount(); i-- > 0;) {
      rebuilt = rebuilt.ShiftLeft(32) + BigInt(static_cast<int64_t>(v.Limb(i)));
    }
    EXPECT_NE(v.Limb(v.LimbCount() - 1), 0u);
    EXPECT_EQ(rebuilt.ToString(), v.Abs().ToString());
  }
}

TEST(RationalInPlaceTest, CompoundAssignmentsMatchBinaryOperators) {
  std::mt19937_64 rng(35);
  const auto random_rational = [&rng]() {
    BigInt num(static_cast<int64_t>(rng() % 2000001) - 1000000);
    BigInt den(static_cast<int64_t>(rng() % 999) + 1);
    // A third of the time, push numerator or denominator past 64 bits.
    if (rng() % 3 == 0) num = num * BigInt(1).ShiftLeft(40 + static_cast<int>(rng() % 60));
    if (rng() % 3 == 0) den = den * (BigInt(1).ShiftLeft(40 + static_cast<int>(rng() % 60)) + BigInt(1));
    return Rational(num, den);
  };
  for (int iter = 0; iter < 1500; ++iter) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    Rational s = a;
    s += b;
    EXPECT_EQ(s.ToString(), (a + b).ToString());
    Rational d = a;
    d -= b;
    EXPECT_EQ(d.ToString(), (a - b).ToString());
    Rational p = a;
    p *= b;
    EXPECT_EQ(p.ToString(), (a * b).ToString());
    if (b.sign() != 0) {
      Rational q = a;
      q /= b;
      EXPECT_EQ(q.ToString(), (a / b).ToString());
    }
    // Equal-denominator shortcut: force a shared denominator.
    const Rational c(BigInt(static_cast<int64_t>(rng() % 1000)), b.den());
    Rational e(a.num(), b.den());
    const Rational e0 = e;
    e += c;
    EXPECT_EQ(e.ToString(), (e0 + c).ToString());
  }
}

TEST(RationalInPlaceTest, SelfAliasingCompoundAssignments) {
  const Rational values[] = {Rational(0), Rational(7, 3), Rational(-22, 8),
                             Rational(BigInt(1).ShiftLeft(100), BigInt(9)),
                             Rational(BigInt(-13), BigInt(1).ShiftLeft(90))};
  for (const Rational& v : values) {
    Rational s = v;
    s += s;
    EXPECT_EQ(s.ToString(), (v + v).ToString()) << v.ToString();
    Rational d = v;
    d -= d;
    EXPECT_EQ(d.sign(), 0) << v.ToString();
    Rational p = v;
    p *= p;
    EXPECT_EQ(p.ToString(), (v * v).ToString()) << v.ToString();
    if (v.sign() != 0) {
      Rational q = v;
      q /= q;
      EXPECT_EQ(q.ToString(), Rational(1).ToString()) << v.ToString();
    }
  }
}

}  // namespace
}  // namespace topodb
