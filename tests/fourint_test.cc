#include "src/fourint/four_intersection.h"

#include <gtest/gtest.h>

#include "src/region/fixtures.h"

namespace topodb {
namespace {

SpatialInstance Pair(Region a, Region b) {
  SpatialInstance instance;
  EXPECT_TRUE(instance.AddRegion("A", std::move(a)).ok());
  EXPECT_TRUE(instance.AddRegion("B", std::move(b)).ok());
  return instance;
}

FourIntRelation RelateAB(const SpatialInstance& instance) {
  Result<FourIntRelation> r = Relate(instance, "A", "B");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// One canonical configuration per relation (the paper's Fig 2 catalogue).

TEST(FourIntTest, Disjoint) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(2, 2)),
                                  *Region::MakeRect(Point(5, 0), Point(7, 2)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kDisjoint);
}

TEST(FourIntTest, MeetAlongEdge) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(2, 2)),
                                  *Region::MakeRect(Point(2, 0), Point(4, 2)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kMeet);
}

TEST(FourIntTest, MeetAtCorner) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(2, 2)),
                                  *Region::MakeRect(Point(2, 2), Point(4, 4)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kMeet);
}

TEST(FourIntTest, Overlap) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(4, 4)),
                                  *Region::MakeRect(Point(2, 2), Point(6, 6)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kOverlap);
}

TEST(FourIntTest, Equal) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(4, 4)),
                                  *Region::MakeRect(Point(0, 0), Point(4, 4)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kEqual);
}

TEST(FourIntTest, EqualDifferentShapeDescriptions) {
  // Equality is about point sets: an L-shaped Rect* described with extra
  // collinear vertices equals its plain description.
  Region a = *Region::MakePoly({Point(0, 0), Point(4, 0), Point(4, 4),
                                Point(0, 4)});
  Region b = *Region::MakePoly({Point(0, 0), Point(2, 0), Point(4, 0),
                                Point(4, 4), Point(0, 4)});
  EXPECT_EQ(RelateAB(Pair(a, b)), FourIntRelation::kEqual);
}

TEST(FourIntTest, ContainsAndInside) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(8, 8)),
                                  *Region::MakeRect(Point(2, 2), Point(4, 4)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kContains);
  Result<FourIntRelation> inverse = Relate(instance, "B", "A");
  ASSERT_TRUE(inverse.ok());
  EXPECT_EQ(*inverse, FourIntRelation::kInside);
}

TEST(FourIntTest, CoversAndCoveredBy) {
  // B inside A sharing part of A's boundary.
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(8, 8)),
                                  *Region::MakeRect(Point(0, 2), Point(4, 4)));
  EXPECT_EQ(RelateAB(instance), FourIntRelation::kCovers);
  Result<FourIntRelation> inverse = Relate(instance, "B", "A");
  ASSERT_TRUE(inverse.ok());
  EXPECT_EQ(*inverse, FourIntRelation::kCoveredBy);
}

TEST(FourIntTest, InverseHelper) {
  EXPECT_EQ(Inverse(FourIntRelation::kContains), FourIntRelation::kInside);
  EXPECT_EQ(Inverse(FourIntRelation::kCoveredBy), FourIntRelation::kCovers);
  EXPECT_EQ(Inverse(FourIntRelation::kOverlap), FourIntRelation::kOverlap);
  EXPECT_EQ(Inverse(FourIntRelation::kDisjoint), FourIntRelation::kDisjoint);
}

TEST(FourIntTest, RelationNames) {
  EXPECT_STREQ(FourIntRelationName(FourIntRelation::kOverlap), "overlap");
  EXPECT_STREQ(FourIntRelationName(FourIntRelation::kCoveredBy),
               "coveredBy");
}

TEST(FourIntTest, InverseConsistencyOnFixtures) {
  // relate(A,B) is always the inverse of relate(B,A).
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        NestedInstance(), Fig7bInstance()}) {
    const auto names = instance.names();
    for (size_t x = 0; x < names.size(); ++x) {
      for (size_t y = x + 1; y < names.size(); ++y) {
        Result<FourIntRelation> fwd = Relate(instance, names[x], names[y]);
        Result<FourIntRelation> bwd = Relate(instance, names[y], names[x]);
        ASSERT_TRUE(fwd.ok());
        ASSERT_TRUE(bwd.ok());
        EXPECT_EQ(Inverse(*fwd), *bwd);
      }
    }
  }
}

TEST(FourIntTest, PaperFig1Equivalences) {
  // The paper's headline: Fig 1a/1b and Fig 1c/1d are 4-intersection
  // equivalent (yet not homeomorphic; see invariant tests).
  Result<bool> ab = FourIntEquivalent(Fig1aInstance(), Fig1bInstance());
  ASSERT_TRUE(ab.ok());
  EXPECT_TRUE(*ab);
  Result<bool> cd = FourIntEquivalent(Fig1cInstance(), Fig1dInstance());
  ASSERT_TRUE(cd.ok());
  EXPECT_TRUE(*cd);
  // All pairs in Fig 1a overlap.
  SpatialInstance a = Fig1aInstance();
  for (const char* x : {"A", "B", "C"}) {
    for (const char* y : {"A", "B", "C"}) {
      if (std::string(x) == y) continue;
      EXPECT_EQ(*Relate(a, x, y), FourIntRelation::kOverlap);
    }
  }
}

TEST(FourIntTest, NotEquivalentWhenARelationDiffers) {
  SpatialInstance nested = NestedInstance();     // A contains B.
  SpatialInstance disjoint = DisjointPairInstance();
  Result<bool> eq = FourIntEquivalent(nested, disjoint);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(FourIntTest, NotEquivalentOnDifferentNames) {
  Result<bool> eq = FourIntEquivalent(Fig1aInstance(), Fig1cInstance());
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(*eq);
}

TEST(FourIntTest, MatrixDirectly) {
  SpatialInstance instance = Pair(*Region::MakeRect(Point(0, 0), Point(4, 4)),
                                  *Region::MakeRect(Point(2, 2), Point(6, 6)));
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  FourIntersectionMatrix m = ComputeMatrix(*complex, 0, 1);
  EXPECT_TRUE(m.boundary_boundary);
  EXPECT_TRUE(m.interior_interior);
  EXPECT_TRUE(m.boundary_a_interior_b);
  EXPECT_TRUE(m.interior_a_boundary_b);
  // Unrealizable combination rejected.
  FourIntersectionMatrix bad;
  bad.interior_interior = false;
  bad.boundary_a_interior_b = true;
  EXPECT_FALSE(ClassifyMatrix(bad).ok());
}

TEST(FourIntTest, RelateMissingRegionFails) {
  EXPECT_FALSE(Relate(Fig1cInstance(), "A", "Z").ok());
}

}  // namespace
}  // namespace topodb
