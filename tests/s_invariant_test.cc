#include "src/invariant/s_invariant.h"

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/region/fixtures.h"
#include "src/region/transform.h"

namespace topodb {
namespace {

SpatialInstance TwoRects(const Point& b_lo, const Point& b_hi) {
  SpatialInstance instance;
  EXPECT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(1, 1)))
                  .ok());
  EXPECT_TRUE(instance.AddRegion("B", *Region::MakeRect(b_lo, b_hi)).ok());
  return instance;
}

TEST(SInvariantTest, RejectsNonRectilinear) {
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakePoly({Point(0, 0), Point(4, 0),
                                                     Point(2, 3)}))
                  .ok());
  EXPECT_FALSE(SInvariant::Compute(instance).ok());
}

TEST(SInvariantTest, SelfEquivalent) {
  SpatialInstance instance = TwoRects(Point(2, 0), Point(3, 1));
  Result<SInvariant> a = SInvariant::Compute(instance);
  Result<SInvariant> b = SInvariant::Compute(instance);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->EquivalentTo(*b));
}

TEST(SInvariantTest, InvariantUnderSymmetryTransforms) {
  SpatialInstance base = TwoRects(Point(2, 0), Point(3, 1));
  Result<SInvariant> original = SInvariant::Compute(base);
  ASSERT_TRUE(original.ok());
  // Monotone kinked map on x, identity on y.
  MonotonePl1D kink = *MonotonePl1D::Make(
      {Rational(0), Rational(1), Rational(2), Rational(3)},
      {Rational(0), Rational(5), Rational(6), Rational(10)});
  SymmetryTransform stretch(kink, MonotonePl1D(), /*swap_axes=*/false);
  Result<SpatialInstance> stretched = stretch.ApplyToInstance(base);
  ASSERT_TRUE(stretched.ok());
  EXPECT_TRUE(original->EquivalentTo(*SInvariant::Compute(*stretched)));
  // Axis swap.
  SymmetryTransform swap(MonotonePl1D(), MonotonePl1D(), /*swap_axes=*/true);
  Result<SpatialInstance> swapped = swap.ApplyToInstance(base);
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(original->EquivalentTo(*SInvariant::Compute(*swapped)));
  // Decreasing map on x (reflection-like).
  MonotonePl1D dec = *MonotonePl1D::Make({Rational(0), Rational(1)},
                                         {Rational(10), Rational(9)});
  SymmetryTransform reflect(dec, MonotonePl1D(), /*swap_axes=*/false);
  Result<SpatialInstance> reflected = reflect.ApplyToInstance(base);
  ASSERT_TRUE(reflected.ok());
  EXPECT_TRUE(original->EquivalentTo(*SInvariant::Compute(*reflected)));
}

TEST(SInvariantTest, Fig14AlignedVsDiagonalPair) {
  // The Fig 14 phenomenon: two H-equivalent instances (two disjoint
  // squares) that are not S-equivalent — in one the squares share their
  // y-span; in the other they are diagonal to each other.
  SpatialInstance aligned = TwoRects(Point(2, 0), Point(3, 1));
  SpatialInstance diagonal = TwoRects(Point(2, 2), Point(3, 3));
  // Topologically equivalent...
  Result<InvariantData> ta = ComputeInvariant(aligned);
  Result<InvariantData> td = ComputeInvariant(diagonal);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(td.ok());
  EXPECT_TRUE(*Isomorphic(*ta, *td));
  // ...but not S-equivalent.
  Result<SInvariant> sa = SInvariant::Compute(aligned);
  Result<SInvariant> sd = SInvariant::Compute(diagonal);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sd.ok());
  EXPECT_FALSE(sa->EquivalentTo(*sd));
}

TEST(SInvariantTest, OverlapAmountIrrelevant) {
  // Overlapping pairs with different overlap amounts are S-equivalent: the
  // grid structure is the same.
  SpatialInstance small = TwoRects(Point(Rational(1, 2), 0),
                                   Point(Rational(3, 2), 1));
  SpatialInstance large = TwoRects(Point(Rational(1, 10), 0),
                                   Point(Rational(11, 10), 1));
  Result<SInvariant> ss = SInvariant::Compute(small);
  Result<SInvariant> sl = SInvariant::Compute(large);
  ASSERT_TRUE(ss.ok());
  ASSERT_TRUE(sl.ok());
  EXPECT_TRUE(ss->EquivalentTo(*sl));
}

TEST(SInvariantTest, GridDimensions) {
  SpatialInstance instance = TwoRects(Point(2, 0), Point(3, 1));
  Result<SInvariant> s = SInvariant::Compute(instance);
  ASSERT_TRUE(s.ok());
  // xs: 0,1,2,3 -> 3 columns; ys: 0,1 -> 1 row.
  EXPECT_EQ(s->grid_columns(), 3u);
  EXPECT_EQ(s->grid_rows(), 1u);
}

TEST(SInvariantTest, EmptyInstance) {
  Result<SInvariant> a = SInvariant::Compute(SpatialInstance());
  Result<SInvariant> b = SInvariant::Compute(SpatialInstance());
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->EquivalentTo(*b));
}

}  // namespace
}  // namespace topodb
