// Proof that the small-integer predicate path never touches the heap
// (ISSUE 7 acceptance criterion). Global operator new/delete are replaced
// with counting versions; each measured region runs real predicate and
// arithmetic workloads and asserts an allocation delta of exactly zero.
// The guarantee rests on the inline LimbVec buffer (8 limbs), the 64/128-bit
// BigInt fast paths, and the stack-only expansion stage — a regression in
// any of them shows up here as a nonzero count.
//
// Measured regions contain only the operations under test: no gtest
// assertions, no ToString, no container growth. Every input is constructed
// (and every code path warmed, for lazily-initialized thread-locals)
// before counting starts.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "src/base/bigint.h"
#include "src/base/rational.h"
#include "src/geom/point.h"
#include "src/geom/predicates.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace topodb {
namespace {

// Runs fn once to warm lazy state, then measures the second run.
template <typename Fn>
uint64_t AllocationsIn(Fn&& fn) {
  fn();
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(AllocGuardTest, CountingHookIsLive) {
  // Sanity: the overridden operator new is actually the one in effect.
  // Called directly (not via a new-expression) so the compiler cannot
  // elide the allocation as a paired new/delete.
  const uint64_t n = AllocationsIn([] {
    void* p = ::operator new(16);
    ::operator delete(p);
  });
  EXPECT_GE(n, 1u);
}

TEST(AllocGuardTest, SmallBigIntArithmeticIsAllocationFree) {
  const BigInt a(123456789), b(-987654321), c(715827883);
  volatile int sink = 0;
  const uint64_t n = AllocationsIn([&] {
    BigInt acc(1);
    for (int i = 0; i < 100; ++i) {
      acc = a * b + c;
      acc += a;
      acc -= b;
      acc *= c;
      BigInt q, r;
      BigInt::DivMod(acc, c, &q, &r);
      acc = BigInt::Gcd(q, r);
      sink = sink + acc.sign() + acc.Compare(b);
    }
  });
  EXPECT_EQ(n, 0u) << "small BigInt ops hit the allocator";
}

TEST(AllocGuardTest, SmallRationalArithmeticIsAllocationFree) {
  const Rational a(355, 113), b(-22, 7), c(1, 3);
  volatile int sink = 0;
  const uint64_t n = AllocationsIn([&] {
    Rational acc(1);
    for (int i = 0; i < 100; ++i) {
      acc = a * b + c;
      acc += a;
      acc -= b;
      acc *= c;
      acc /= a;
      sink = sink + acc.sign();
    }
  });
  EXPECT_EQ(n, 0u) << "small Rational ops hit the allocator";
}

TEST(AllocGuardTest, SmallIntegerPredicatesAreAllocationFree) {
  // Integer coordinates resolved by the static filter stage: the hot path
  // of every grid/chain/random-rect arrangement build.
  const Point a(0, 0), b(10, 0), c(5, 3), d(5, -3), col(5, 0);
  const Point u = b - a, v = c - d;
  volatile int sink = 0;
  const uint64_t n = AllocationsIn([&] {
    for (int i = 0; i < 100; ++i) {
      sink = sink + Orientation(a, b, c) + Orientation(a, b, col);
      sink = sink + (OnSegment(col, a, b) ? 1 : 0);
      sink = sink + (StrictlyInsideSegment(col, a, b) ? 1 : 0);
      sink = sink + (CcwDirectionLess(u, v) ? 1 : 0);
      sink = sink + (SameDirection(u, v) ? 1 : 0);
      sink = sink + CompareAlongDirection(a, c, u);
    }
  });
  EXPECT_EQ(n, 0u) << "small-integer predicate path hit the allocator";
}

TEST(AllocGuardTest, SmallIntegerSegmentIntersectionIsAllocationFree) {
  // A disjoint pair (the overwhelmingly common broad-phase outcome) and a
  // crossing pair whose intersection point has single-limb coordinates.
  const Point a(0, 0), b(10, 0), c(2, -5), d(2, 5), e(20, 1), f(30, 2);
  volatile int sink = 0;
  const uint64_t n = AllocationsIn([&] {
    for (int i = 0; i < 100; ++i) {
      const SegmentIntersection miss = IntersectSegments(a, b, e, f);
      const SegmentIntersection hit = IntersectSegments(a, b, c, d);
      sink = sink + static_cast<int>(miss.kind) + static_cast<int>(hit.kind) +
             hit.p0.x.sign();
    }
  });
  EXPECT_EQ(n, 0u) << "small-integer segment intersection hit the allocator";
}

TEST(AllocGuardTest, ExpansionStagePredicatesAreAllocationFree) {
  // Stretch-scaled near-collinear inputs: the static and interval stages
  // both decline, the expansion stage decides. Its buffers are fixed-size
  // stack arrays, and the 3-limb inputs stay inside the inline LimbVec
  // buffer, so the whole resolution must be allocation-free too.
  const Rational stretch(BigInt(1).ShiftLeft(64), BigInt(3));
  const Point a(Rational(3) * stretch, Rational(4) * stretch);
  const Point b(Rational(11) * stretch, Rational(7) * stretch);
  const Point mid = a + (b - a) * Rational(1, 2);
  ASSERT_EQ(Orientation(a, b, mid), 0);
  const PredicateFilterStats before = LocalPredicateFilterStats();
  volatile int sink = 0;
  const uint64_t n = AllocationsIn([&] {
    for (int i = 0; i < 50; ++i) {
      sink = sink + Orientation(a, b, mid);
    }
  });
  const PredicateFilterStats after = LocalPredicateFilterStats();
  ASSERT_GT(after.expansion_hits, before.expansion_hits);  // Right stage.
  EXPECT_EQ(n, 0u) << "expansion-stage predicate path hit the allocator";
}

TEST(AllocGuardTest, ExactModeSmallPredicatesAreAllocationFree) {
  // Even the pure rational path must stay allocation-free on small inputs:
  // differential (exact_predicates) builds run entirely through it.
  ScopedPredicateMode exact(PredicateMode::kExact);
  const Point a(0, 0), b(10, 0), c(5, 3), col(5, 0);
  volatile int sink = 0;
  const uint64_t n = AllocationsIn([&] {
    for (int i = 0; i < 100; ++i) {
      sink = sink + Orientation(a, b, c) + Orientation(a, b, col);
    }
  });
  EXPECT_EQ(n, 0u) << "exact-mode small predicate path hit the allocator";
}

}  // namespace
}  // namespace topodb
