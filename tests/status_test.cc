#include "src/base/status.h"

#include <string>

#include <gtest/gtest.h>

namespace topodb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad polygon");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad polygon");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad polygon");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidInstance("x").code(), StatusCode::kInvalidInstance);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, DataLossRendersItsName) {
  EXPECT_EQ(Status::DataLoss("bad store").ToString(), "DataLoss: bad store");
}

TEST(StatusTest, ExitCodesAreAStableContract) {
  // ci/run_ci.sh asserts these exact values against the CLI binaries; a
  // change here is a break for every script matching on $?.
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidInstance("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::Unsupported("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")), 6);
  EXPECT_EQ(ExitCodeForStatus(Status::ParseError("x")), 7);
  EXPECT_EQ(ExitCodeForStatus(Status::DeadlineExceeded("x")), 8);
  EXPECT_EQ(ExitCodeForStatus(Status::Unavailable("x")), 9);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 10);
  EXPECT_EQ(ExitCodeForStatus(Status::DataLoss("x")), 11);
}

TEST(StatusTest, DeadlineExceededRendersItsName) {
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
}

TEST(StatusTest, UnavailableRendersItsName) {
  EXPECT_EQ(Status::Unavailable("admission queue full").ToString(),
            "Unavailable: admission queue full");
}

// The three overload-adjacent codes must stay distinguishable: clients
// retry Unavailable (load shed), but not ResourceExhausted (a cap the
// same request would hit again) or DeadlineExceeded (budget spent).
TEST(StatusTest, UnavailableDistinctFromExhaustionAndDeadline) {
  EXPECT_NE(Status::Unavailable("x").code(),
            Status::ResourceExhausted("x").code());
  EXPECT_NE(Status::Unavailable("x").code(),
            Status::DeadlineExceeded("x").code());
  EXPECT_EQ(Status::CodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no such region");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int v) {
  TOPODB_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_FALSE(Chained(-1).ok());
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  TOPODB_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

}  // namespace
}  // namespace topodb
