#include "src/base/bigint.h"

#include <cstdint>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace topodb {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-9999}, INT64_MAX, INT64_MIN, INT64_MIN + 1}) {
    BigInt b(v);
    int64_t back = 0;
    ASSERT_TRUE(b.ToInt64(&back)) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(BigIntTest, Int64Overflow) {
  BigInt big = BigInt(INT64_MAX) + BigInt(1);
  int64_t out = 0;
  EXPECT_FALSE(big.ToInt64(&out));
  BigInt small = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_FALSE(small.ToInt64(&out));
  // INT64_MIN itself fits.
  EXPECT_TRUE(BigInt(INT64_MIN).ToInt64(&out));
  EXPECT_EQ(out, INT64_MIN);
}

TEST(BigIntTest, DecimalParseAndPrint) {
  const char* cases[] = {
      "0", "1", "-1", "123456789", "-123456789",
      "340282366920938463463374607431768211456",   // 2^128
      "-340282366920938463463374607431768211455",  // -(2^128 - 1)
  };
  for (const char* s : cases) {
    BigInt b(s);
    EXPECT_EQ(b.ToString(), s);
  }
}

TEST(BigIntTest, ParseRejectsGarbage) {
  BigInt out;
  EXPECT_FALSE(BigInt::FromString("", &out));
  EXPECT_FALSE(BigInt::FromString("-", &out));
  EXPECT_FALSE(BigInt::FromString("+", &out));
  EXPECT_FALSE(BigInt::FromString("12a3", &out));
  EXPECT_FALSE(BigInt::FromString(" 12", &out));
}

TEST(BigIntTest, ParseNormalizesZeros) {
  BigInt out;
  ASSERT_TRUE(BigInt::FromString("-000", &out));
  EXPECT_TRUE(out.is_zero());
  EXPECT_EQ(out.sign(), 0);
  ASSERT_TRUE(BigInt::FromString("0007", &out));
  EXPECT_EQ(out.ToString(), "7");
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a("4294967295");  // 2^32 - 1
  BigInt one(1);
  EXPECT_EQ((a + one).ToString(), "4294967296");
  BigInt b("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + one).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionBorrowsAndFlipsSign) {
  BigInt a(100);
  BigInt b(250);
  EXPECT_EQ((a - b).ToString(), "-150");
  EXPECT_EQ((b - a).ToString(), "150");
  EXPECT_TRUE((a - a).is_zero());
}

TEST(BigIntTest, MultiplicationSchoolbook) {
  BigInt a("123456789123456789");
  BigInt b("987654321987654321");
  EXPECT_EQ((a * b).ToString(), "121932631356500531347203169112635269");
  EXPECT_EQ((a * BigInt(0)).ToString(), "0");
  EXPECT_EQ((a * BigInt(-1)).ToString(), "-123456789123456789");
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  struct Case {
    int64_t a, b, q, r;
  } cases[] = {
      {7, 2, 3, 1},   {-7, 2, -3, -1}, {7, -2, -3, 1}, {-7, -2, 3, -1},
      {6, 3, 2, 0},   {0, 5, 0, 0},    {1, 7, 0, 1},   {-1, 7, 0, -1},
  };
  for (const Case& c : cases) {
    BigInt q, r;
    BigInt::DivMod(BigInt(c.a), BigInt(c.b), &q, &r);
    int64_t qi = 0, ri = 0;
    ASSERT_TRUE(q.ToInt64(&qi));
    ASSERT_TRUE(r.ToInt64(&ri));
    EXPECT_EQ(qi, c.q) << c.a << "/" << c.b;
    EXPECT_EQ(ri, c.r) << c.a << "%" << c.b;
  }
}

TEST(BigIntTest, DivModLargeOperands) {
  BigInt a("340282366920938463463374607431768211456");  // 2^128
  BigInt b("18446744073709551616");                     // 2^64
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q.ToString(), "18446744073709551616");
  EXPECT_TRUE(r.is_zero());
  BigInt::DivMod(a + BigInt(12345), b, &q, &r);
  EXPECT_EQ(q.ToString(), "18446744073709551616");
  EXPECT_EQ(r.ToString(), "12345");
}

TEST(BigIntTest, DivisionIdentityRandomized) {
  std::mt19937_64 rng(20260705);
  for (int iter = 0; iter < 500; ++iter) {
    int64_t ai = static_cast<int64_t>(rng());
    int64_t bi = static_cast<int64_t>(rng() % 1000003) - 500000;
    if (bi == 0) bi = 17;
    BigInt a(ai), b(bi);
    // Exercise multi-limb paths too.
    a = a * BigInt(static_cast<int64_t>(rng() % 100000 + 1));
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.Abs(), b.Abs());
    // Remainder sign matches dividend sign (or is zero).
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)).ToString(), "5");
  EXPECT_TRUE(BigInt::Gcd(BigInt(0), BigInt(0)).is_zero());
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToString(), "1");
}

TEST(BigIntTest, ComparisonTotalOrder) {
  BigInt values[] = {BigInt("-100000000000000000000"), BigInt(-5), BigInt(0),
                     BigInt(3), BigInt("100000000000000000000")};
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(values[i] < values[j], i < j);
      EXPECT_EQ(values[i] == values[j], i == j);
      EXPECT_EQ(values[i] >= values[j], i >= j);
    }
  }
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0);
  EXPECT_EQ(BigInt(1).BitLength(), 1);
  EXPECT_EQ(BigInt(2).BitLength(), 2);
  EXPECT_EQ(BigInt(255).BitLength(), 8);
  EXPECT_EQ(BigInt(256).BitLength(), 9);
  EXPECT_EQ(BigInt("18446744073709551616").BitLength(), 65);  // 2^64
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(0).ToDouble(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt(-42).ToDouble(), -42.0);
  double big = BigInt("18446744073709551616").ToDouble();
  EXPECT_NEAR(big, 1.8446744073709552e19, 1e4);
}

TEST(BigIntTest, StreamOutput) {
  std::ostringstream os;
  os << BigInt(-123);
  EXPECT_EQ(os.str(), "-123");
}

TEST(BigIntTest, HashConsistentWithEquality) {
  BigInt a("123456789123456789");
  BigInt b = BigInt("123456789123456788") + BigInt(1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(BigIntTest, AdditionAlgebraRandomized) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    BigInt a(static_cast<int64_t>(rng()));
    BigInt b(static_cast<int64_t>(rng()));
    BigInt c(static_cast<int64_t>(rng()));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + BigInt(0), a);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigIntTest, ShiftLeftBasics) {
  EXPECT_EQ(BigInt(1).ShiftLeft(0), BigInt(1));
  EXPECT_EQ(BigInt(1).ShiftLeft(10), BigInt(1024));
  EXPECT_EQ(BigInt(-3).ShiftLeft(4), BigInt(-48));
  EXPECT_EQ(BigInt(0).ShiftLeft(1000), BigInt(0));
  // BitLength grows by exactly the shift amount.
  EXPECT_EQ(BigInt(5).ShiftLeft(100).BitLength(), 3 + 100);
}

TEST(BigIntTest, ShiftLeftCrossesLimbBoundaries) {
  // Shifts that are not limb-aligned, and shifts past several limbs, must
  // agree with repeated doubling.
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt v(static_cast<int64_t>(rng()));
    const int bits = static_cast<int>(rng() % 200);
    BigInt doubled = v;
    for (int i = 0; i < bits; ++i) doubled = doubled + doubled;
    EXPECT_EQ(v.ShiftLeft(bits), doubled) << v.ToString() << " << " << bits;
  }
  // 2^k * 2^m == 2^(k+m) across a multi-limb value.
  EXPECT_EQ(BigInt(1).ShiftLeft(64).ShiftLeft(65),
            BigInt(1).ShiftLeft(129));
}

}  // namespace
}  // namespace topodb
