// Cross-module edge cases: degenerate contacts, coincident boundaries,
// adversarial polygons, and randomized predicate laws that round out the
// per-module suites.

#include <random>

#include <gtest/gtest.h>

#include "src/arrangement/cell_complex.h"
#include "src/fourint/four_intersection.h"
#include "src/geom/predicates.h"
#include "src/invariant/canonical.h"
#include "src/invariant/validate.h"
#include "src/query/eval.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

TEST(EdgeCaseTest, IdenticalRegionsDifferentNames) {
  // Two regions with exactly the same extent: every boundary edge is
  // shared, the relation is equal, and the complex has one interior face.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  EXPECT_EQ(complex->faces().size(), 2u);
  EXPECT_EQ(complex->edges().size(), 1u);
  EXPECT_EQ(complex->edges()[0].owners.size(), 2u);
  EXPECT_EQ(*Relate(instance, "A", "B"), FourIntRelation::kEqual);
  InvariantData data = *ComputeInvariant(instance);
  EXPECT_TRUE(ValidateInvariant(data).ok());
}

TEST(EdgeCaseTest, PartiallySharedBoundary) {
  // B sits inside A sharing part of one side (covers); the shared piece is
  // a two-owner edge, the rest of A's side splits at B's corners.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(10, 10)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(2, 0), Point(6, 4)))
                  .ok());
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  int shared = 0;
  for (const auto& edge : complex->edges()) {
    if (edge.owners.size() == 2) ++shared;
  }
  EXPECT_EQ(shared, 1);
  EXPECT_EQ(*Relate(instance, "A", "B"), FourIntRelation::kCovers);
  EXPECT_TRUE(ValidateInvariant(*ComputeInvariant(instance)).ok());
}

TEST(EdgeCaseTest, ChainOfMeets) {
  // A row of rectangles touching edge-to-edge: all meets; the skeleton is
  // connected through the shared walls.
  SpatialInstance instance;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(instance
                    .AddRegion("R" + std::to_string(i),
                               *Region::MakeRect(Point(4 * i, 0),
                                                 Point(4 * i + 4, 4)))
                    .ok());
  }
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  EXPECT_TRUE(complex->IsConnected());
  EXPECT_EQ(*Relate(instance, "R0", "R1"), FourIntRelation::kMeet);
  EXPECT_EQ(*Relate(instance, "R0", "R2"), FourIntRelation::kDisjoint);
  EXPECT_TRUE(ValidateInvariant(*ComputeInvariant(instance)).ok());
}

TEST(EdgeCaseTest, CheckerboardCornerContacts) {
  // Four squares in a 2x2 checkerboard pattern all touching at the center
  // point: a degree-8 vertex with collinear shared sides.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("NW", *Region::MakeRect(Point(0, 4), Point(4, 8)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("NE", *Region::MakeRect(Point(4, 4), Point(8, 8)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("SW", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("SE", *Region::MakeRect(Point(4, 0), Point(8, 4)))
                  .ok());
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  // Center vertex with 8 darts (4 shared walls).
  bool found_center = false;
  for (const auto& vertex : complex->vertices()) {
    if (vertex.point == Point(4, 4)) {
      found_center = true;
      EXPECT_EQ(vertex.darts.size(), 4u);  // Four shared-wall edges.
      EXPECT_EQ(LabelString(vertex.label), "bbbb");
    }
  }
  EXPECT_TRUE(found_center);
  EXPECT_EQ(*Relate(instance, "NW", "SE"), FourIntRelation::kMeet);
  EXPECT_EQ(*Relate(instance, "NW", "NE"), FourIntRelation::kMeet);
  EXPECT_TRUE(ValidateInvariant(*ComputeInvariant(instance)).ok());
}

TEST(EdgeCaseTest, ThinSliverPolygons) {
  // Extremely thin triangles exercise exactness: no robustness failure,
  // correct overlap detection.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakePoly({Point(0, 0),
                                                     Point(1000000, 1),
                                                     Point(1000000, 0)}))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakePoly({Point(0, 1),
                                                     Point(1000000, 0),
                                                     Point(0, 0)}))
                  .ok());
  EXPECT_EQ(*Relate(instance, "A", "B"), FourIntRelation::kOverlap);
  InvariantData data = *ComputeInvariant(instance);
  EXPECT_TRUE(ValidateInvariant(data).ok());
}

TEST(EdgeCaseTest, InteriorPointInvadedEar) {
  // A polygon whose first convex corner's ear contains another vertex:
  // exercises the closest-invader branch of InteriorPoint.
  Polygon poly({Point(0, 0), Point(10, 0), Point(10, 10), Point(1, 1),
                Point(0, 10)});
  ASSERT_TRUE(poly.Validate().ok());
  Point ip = poly.InteriorPoint();
  EXPECT_EQ(poly.Locate(ip), PointLocation::kInterior);
}

TEST(EdgeCaseTest, CcwDirectionTotalCyclicOrder) {
  // Randomized: CcwDirectionLess is a strict total order on distinct
  // directions (antisymmetric, transitive within the sweep).
  std::mt19937_64 rng(99);
  std::vector<Point> dirs;
  for (int i = 0; i < 40; ++i) {
    int64_t x = static_cast<int64_t>(rng() % 21) - 10;
    int64_t y = static_cast<int64_t>(rng() % 21) - 10;
    if (x == 0 && y == 0) continue;
    dirs.push_back(Point(x, y));
  }
  for (const Point& u : dirs) {
    for (const Point& v : dirs) {
      if (SameDirection(u, v)) {
        EXPECT_FALSE(CcwDirectionLess(u, v));
        EXPECT_FALSE(CcwDirectionLess(v, u));
      } else {
        EXPECT_NE(CcwDirectionLess(u, v), CcwDirectionLess(v, u));
      }
    }
  }
  // Transitivity.
  for (const Point& u : dirs) {
    for (const Point& v : dirs) {
      for (const Point& w : dirs) {
        if (CcwDirectionLess(u, v) && CcwDirectionLess(v, w)) {
          EXPECT_TRUE(CcwDirectionLess(u, w))
              << u.ToString() << v.ToString() << w.ToString();
        }
      }
    }
  }
}

TEST(EdgeCaseTest, QueryOnSingleRegionUniverse) {
  // Queries on the minimal universe (anchored loop, 2 faces).
  Result<QueryEngine> engine = QueryEngine::Build(SingleRegionInstance());
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(*engine->Evaluate("exists region r . equal(r, A)"));
  EXPECT_TRUE(*engine->Evaluate("exists region r . contains(r, A)"));
  EXPECT_FALSE(*engine->Evaluate("exists region r . inside(r, A) and "
                                 "not equal(r, A)"));
  EXPECT_TRUE(*engine->Evaluate(
      "forall cell c . connect(c, A) or disjoint(c, A)"));
}

TEST(EdgeCaseTest, NestedThreeDeepInvariantChain) {
  // Three-deep nesting vs two-deep plus sibling: distinguished by the
  // containment tree even though the label multisets coincide pairwise at
  // the top level. (A contains B contains C) vs (A contains B, C inside B
  // too but side by side) — labels differ here, so exercise the real
  // tree case: D inside pocket vs D inside lens of Fig 1d.
  SpatialInstance pocket_d = Fig1dInstance();
  ASSERT_TRUE(pocket_d
                  .AddRegion("D", *Region::MakeRect(Point(6, Rational(13, 2)),
                                                    Point(8, Rational(15, 2))))
                  .ok());
  SpatialInstance between_d = Fig1dInstance();
  // Between the lenses: inside A only -> different labels, trivially
  // different; the interesting twin is D fully outside (exterior face),
  // already covered in invariant_test. Here: assert validation passes for
  // the nested variant and the tree has 2 components.
  InvariantData data = *ComputeInvariant(pocket_d);
  EXPECT_EQ(data.ComponentCount(), 2);
  EXPECT_TRUE(ValidateInvariant(data).ok());
}

TEST(EdgeCaseTest, SegmentIntersectionContainment) {
  // One segment entirely inside another (collinear): overlap is the inner
  // segment.
  auto r = IntersectSegments(Point(0, 0), Point(10, 0), Point(2, 0),
                             Point(5, 0));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kOverlap);
  EXPECT_EQ(r.p0, Point(2, 0));
  EXPECT_EQ(r.p1, Point(5, 0));
  // Identical segments.
  auto s = IntersectSegments(Point(1, 1), Point(4, 4), Point(1, 1),
                             Point(4, 4));
  ASSERT_EQ(s.kind, SegmentIntersection::Kind::kOverlap);
  EXPECT_EQ(s.p0, Point(1, 1));
  EXPECT_EQ(s.p1, Point(4, 4));
}

}  // namespace
}  // namespace topodb
