#include "src/query/rect_eval.h"

#include <gtest/gtest.h>

#include "src/region/fixtures.h"

namespace topodb {
namespace {

SpatialInstance Rects(
    const std::vector<std::tuple<std::string, int64_t, int64_t, int64_t,
                                 int64_t>>& rects) {
  SpatialInstance instance;
  for (const auto& [name, x1, y1, x2, y2] : rects) {
    EXPECT_TRUE(instance
                    .AddRegion(name, *Region::MakeRect(Point(x1, y1),
                                                       Point(x2, y2)))
                    .ok());
  }
  return instance;
}

bool Ask(const SpatialInstance& instance, const std::string& query) {
  Result<RectQueryEngine> engine = RectQueryEngine::Build(instance);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  Result<bool> result = engine->Evaluate(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << query;
  return result.ok() && *result;
}

TEST(RectEvalTest, RequiresRectangles) {
  SpatialInstance poly;
  ASSERT_TRUE(poly.AddRegion("A", *Region::MakePoly({Point(0, 0), Point(4, 0),
                                                     Point(2, 3)}))
                  .ok());
  EXPECT_FALSE(RectQueryEngine::Build(poly).ok());
}

TEST(RectEvalTest, AtomicRelations) {
  SpatialInstance instance = Rects({{"A", 0, 0, 4, 4},
                                    {"B", 2, 2, 6, 6},
                                    {"C", 10, 0, 12, 2},
                                    {"D", 4, 0, 8, 4},
                                    {"E", 1, 1, 3, 3}});
  EXPECT_TRUE(Ask(instance, "overlap(A, B)"));
  EXPECT_TRUE(Ask(instance, "disjoint(A, C)"));
  EXPECT_TRUE(Ask(instance, "meet(A, D)"));
  EXPECT_TRUE(Ask(instance, "contains(A, E)"));
  EXPECT_TRUE(Ask(instance, "inside(E, A)"));
  EXPECT_FALSE(Ask(instance, "overlap(A, E)"));
}

TEST(RectEvalTest, RectQuantifierFindsWitness) {
  SpatialInstance instance = Rects({{"A", 0, 0, 4, 4}, {"B", 8, 0, 12, 4}});
  // A rectangle overlapping both disjoint rectangles exists.
  EXPECT_TRUE(Ask(instance, "exists rect r . overlap(r, A) and overlap(r, B)"));
  // But none is inside both.
  EXPECT_FALSE(
      Ask(instance, "exists rect r . inside(r, A) and inside(r, B)"));
}

TEST(RectEvalTest, IsRectOf4CornersStyle) {
  // Theorem 4.4's (-) flavour: a rectangle admits 4 pairwise disjoint
  // corner-meeting rectangles but not 5.
  SpatialInstance instance = Rects({{"A", 0, 0, 4, 4}});
  const char* four =
      "exists rect p . exists rect q . exists rect r . exists rect s . "
      "meet(p, A) and meet(q, A) and meet(r, A) and meet(s, A) and "
      "disjoint(p, q) and disjoint(p, r) and disjoint(p, s) and "
      "disjoint(q, r) and disjoint(q, s) and disjoint(r, s) and "
      "connect(p, q) and false or true";
  // (The full 5-corner impossibility is expensive; spot check existence.)
  EXPECT_TRUE(Ask(instance, four));
}

TEST(RectEvalTest, Fig13EdgeCornerOneEdge) {
  SpatialInstance instance = Rects({{"A", 0, 0, 4, 4},
                                    {"B", 4, 0, 8, 4},    // Full shared side.
                                    {"C", 4, 4, 8, 8},    // Corner with A.
                                    {"D", 4, 1, 8, 3},    // Partial side of A.
                                    {"E", 20, 20, 24, 24}});
  Result<RectQueryEngine> engine = RectQueryEngine::Build(instance);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(*engine->Edge("A", "B"));
  EXPECT_TRUE(*engine->OneEdge("A", "B"));
  EXPECT_TRUE(*engine->Edge("A", "D"));
  EXPECT_FALSE(*engine->OneEdge("A", "D"));
  EXPECT_FALSE(*engine->Edge("A", "C"));
  EXPECT_TRUE(*engine->Corner("A", "C"));
  EXPECT_FALSE(*engine->Corner("A", "B"));
  EXPECT_FALSE(*engine->Edge("A", "E"));
  EXPECT_FALSE(*engine->Corner("A", "E"));
}

TEST(RectEvalTest, Fig13EdgePredicateInTheLanguage) {
  // The paper's edge(r, r') with the containment guard: meet(r, r') and
  // some rect x overlaps both while staying within closure(r u r')
  // (expressed with a universal rect quantifier).
  SpatialInstance edge_contact = Rects({{"P", 0, 0, 4, 4}, {"Q", 4, 0, 8, 4}});
  SpatialInstance corner_contact =
      Rects({{"P", 0, 0, 4, 4}, {"Q", 4, 4, 8, 8}});
  const char* edge_query =
      "meet(P, Q) and exists rect x . overlap(x, P) and overlap(x, Q) and "
      "(forall rect q . connect(x, q) implies "
      "(connect(P, q) or connect(Q, q)))";
  EXPECT_TRUE(Ask(edge_contact, edge_query));
  EXPECT_FALSE(Ask(corner_contact, edge_query));
}

TEST(RectEvalTest, NameQuantifier) {
  SpatialInstance instance = Rects({{"A", 0, 0, 4, 4},
                                    {"B", 2, 2, 6, 6},
                                    {"C", 20, 0, 24, 4}});
  EXPECT_TRUE(Ask(instance,
                  "exists name a . exists name b . not (a = b) and "
                  "overlap(a, b)"));
  EXPECT_FALSE(Ask(instance, "forall name a . forall name b . "
                             "(not (a = b)) implies connect(a, b)"));
}

TEST(RectEvalTest, RegionQuantifierUnsupported) {
  SpatialInstance instance = Rects({{"A", 0, 0, 4, 4}});
  Result<RectQueryEngine> engine = RectQueryEngine::Build(instance);
  ASSERT_TRUE(engine.ok());
  Result<bool> result =
      engine->Evaluate("exists region r . connect(r, A)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(RectEvalTest, SGenericityCheck) {
  // Theorem 5.8 flavor: stretching coordinates by a monotone map does not
  // change any query answer in this language.
  SpatialInstance base = Rects({{"A", 0, 0, 4, 4}, {"B", 3, 1, 9, 3}});
  SpatialInstance stretched = Rects({{"A", 0, 0, 100, 4}, {"B", 50, 1, 901, 3}});
  for (const char* query :
       {"overlap(A, B)", "exists rect r . inside(r, A) and inside(r, B)",
        "forall rect r . connect(r, A) implies connect(r, r)"}) {
    EXPECT_EQ(Ask(base, query), Ask(stretched, query)) << query;
  }
}

}  // namespace
}  // namespace topodb
