#include "src/thematic/relation.h"

#include <gtest/gtest.h>

namespace topodb {
namespace {

Table People() {
  Table t = *Table::Make({"name", "city"});
  EXPECT_TRUE(t.Insert({"ann", "paris"}).ok());
  EXPECT_TRUE(t.Insert({"bob", "tokyo"}).ok());
  EXPECT_TRUE(t.Insert({"cyd", "paris"}).ok());
  return t;
}

TEST(TableTest, MakeRejectsBadSchemas) {
  EXPECT_FALSE(Table::Make({"a", "a"}).ok());
  EXPECT_FALSE(Table::Make({"a", ""}).ok());
  EXPECT_TRUE(Table::Make({}).ok());  // Nullary relations are fine.
}

TEST(TableTest, InsertSetSemantics) {
  Table t = People();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Insert({"ann", "paris"}).ok());
  EXPECT_EQ(t.size(), 3u);  // Duplicate ignored.
  EXPECT_FALSE(t.Insert({"only-one-column"}).ok());
  EXPECT_TRUE(t.Contains({"bob", "tokyo"}));
  EXPECT_FALSE(t.Contains({"bob", "paris"}));
}

TEST(TableTest, SelectEquals) {
  Result<Table> parisians = People().SelectEquals("city", "paris");
  ASSERT_TRUE(parisians.ok());
  EXPECT_EQ(parisians->size(), 2u);
  EXPECT_FALSE(People().SelectEquals("nope", "x").ok());
}

TEST(TableTest, SelectAttrEquals) {
  Table t = *Table::Make({"a", "b"});
  ASSERT_TRUE(t.Insert({"1", "1"}).ok());
  ASSERT_TRUE(t.Insert({"1", "2"}).ok());
  Result<Table> diag = t.SelectAttrEquals("a", "b");
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(diag->size(), 1u);
}

TEST(TableTest, SelectWhere) {
  Table longer = People().SelectWhere(
      [](const std::vector<std::string>& row) { return row[0] < "c"; });
  EXPECT_EQ(longer.size(), 2u);
}

TEST(TableTest, ProjectDeduplicates) {
  Result<Table> cities = People().Project({"city"});
  ASSERT_TRUE(cities.ok());
  EXPECT_EQ(cities->size(), 2u);
  EXPECT_TRUE(cities->Contains({"paris"}));
  // Reordering columns.
  Result<Table> swapped = People().Project({"city", "name"});
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(swapped->Contains({"tokyo", "bob"}));
}

TEST(TableTest, Rename) {
  Result<Table> renamed = People().Rename("city", "location");
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->AttributeIndex("location").ok());
  EXPECT_FALSE(renamed->AttributeIndex("city").ok());
  EXPECT_FALSE(People().Rename("nope", "x").ok());
}

TEST(TableTest, NaturalJoin) {
  Table capitals = *Table::Make({"city", "country"});
  ASSERT_TRUE(capitals.Insert({"paris", "france"}).ok());
  ASSERT_TRUE(capitals.Insert({"tokyo", "japan"}).ok());
  Result<Table> joined = People().Join(capitals);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 3u);
  EXPECT_TRUE(joined->Contains({"ann", "paris", "france"}));
  EXPECT_TRUE(joined->Contains({"bob", "tokyo", "japan"}));
}

TEST(TableTest, JoinWithoutSharedAttributesIsProduct) {
  Table flags = *Table::Make({"flag"});
  ASSERT_TRUE(flags.Insert({"x"}).ok());
  ASSERT_TRUE(flags.Insert({"y"}).ok());
  Result<Table> product = People().Join(flags);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->size(), 6u);
}

TEST(TableTest, UnionAndDifference) {
  Table a = *Table::Make({"x"});
  ASSERT_TRUE(a.Insert({"1"}).ok());
  ASSERT_TRUE(a.Insert({"2"}).ok());
  Table b = *Table::Make({"x"});
  ASSERT_TRUE(b.Insert({"2"}).ok());
  ASSERT_TRUE(b.Insert({"3"}).ok());
  Result<Table> u = a.Union(b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
  Result<Table> d = a.Difference(b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
  EXPECT_TRUE(d->Contains({"1"}));
  Table mismatched = *Table::Make({"y"});
  EXPECT_FALSE(a.Union(mismatched).ok());
  EXPECT_FALSE(a.Difference(mismatched).ok());
}

TEST(TableTest, ComposedQuery) {
  // "Countries with a person": project(join(People, Capitals), country).
  Table capitals = *Table::Make({"city", "country"});
  ASSERT_TRUE(capitals.Insert({"paris", "france"}).ok());
  ASSERT_TRUE(capitals.Insert({"rome", "italy"}).ok());
  Result<Table> joined = People().Join(capitals);
  ASSERT_TRUE(joined.ok());
  Result<Table> countries = joined->Project({"country"});
  ASSERT_TRUE(countries.ok());
  EXPECT_EQ(countries->size(), 1u);
  EXPECT_TRUE(countries->Contains({"france"}));
}

TEST(TableTest, DebugStringContainsHeaderAndRows) {
  std::string dump = People().DebugString();
  EXPECT_NE(dump.find("name | city"), std::string::npos);
  EXPECT_NE(dump.find("ann | paris"), std::string::npos);
}

}  // namespace
}  // namespace topodb
