#include "src/query/eval.h"

#include <gtest/gtest.h>

#include "src/query/parser.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

// Example 4.1: phi separates Fig 1a from Fig 1b.
constexpr char kTripleIntersection[] =
    "exists region r . subset(r, A) and subset(r, B) and subset(r, C)";

// Example 4.2: "A n B is topologically connected".
constexpr char kIntersectionConnected[] =
    "forall region r . forall region s . "
    "(subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) "
    "implies "
    "exists region t . subset(t, A) and subset(t, B) and connect(t, r) "
    "and connect(t, s)";

bool Ask(const SpatialInstance& instance, const std::string& query) {
  Result<QueryEngine> engine = QueryEngine::Build(instance);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  Result<bool> result = engine->Evaluate(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << query;
  return result.ok() && *result;
}

// --- Parser ---

TEST(ParserTest, RoundTripsSimpleFormulas) {
  Result<FormulaPtr> f = ParseQuery("connect(A, B)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(), "connect(A, B)");
  f = ParseQuery("not connect(A, B) and disjoint(B, C)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(),
            "(not (connect(A, B)) and disjoint(B, C))");
}

TEST(ParserTest, QuantifierBodyExtendsRight) {
  Result<FormulaPtr> f =
      ParseQuery("exists region r . connect(r, A) and connect(r, B)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, Formula::Kind::kExists);
  EXPECT_EQ((*f)->body->kind, Formula::Kind::kAnd);
}

TEST(ParserTest, PrecedenceNotAndOrImplies) {
  Result<FormulaPtr> f =
      ParseQuery("connect(A,B) or connect(B,C) and not connect(A,C) "
                 "implies true");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, Formula::Kind::kImplies);
  EXPECT_EQ((*f)->left->kind, Formula::Kind::kOr);
}

TEST(ParserTest, BoundVsFreeIdentifiers) {
  Result<FormulaPtr> f = ParseQuery("exists region r . connect(r, A)");
  ASSERT_TRUE(f.ok());
  const Formula& atom = *(*f)->body;
  EXPECT_EQ(atom.lhs.kind, Term::Kind::kVariable);
  EXPECT_EQ(atom.rhs.kind, Term::Kind::kNameConstant);
}

TEST(ParserTest, NameEquality) {
  Result<FormulaPtr> f =
      ParseQuery("exists name a . exists name b . not (a = b)");
  ASSERT_TRUE(f.ok());
}

TEST(ParserTest, QuotedNamesAreNameConstants) {
  Result<FormulaPtr> f = ParseQuery("connect(\"main street\", \"1a\")");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->lhs.kind, Term::Kind::kNameConstant);
  EXPECT_EQ((*f)->lhs.text, "main street");
  EXPECT_EQ((*f)->rhs.text, "1a");
  // Keywords denote regions when quoted — even inside a quantifier body
  // where the bare word would be a syntax error.
  f = ParseQuery("exists region r . connect(r, \"cell\")");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->body->rhs.kind, Term::Kind::kNameConstant);
  EXPECT_EQ((*f)->body->rhs.text, "cell");
}

TEST(ParserTest, QuotedNameEscapes) {
  Result<FormulaPtr> f = ParseQuery(R"(connect("we\"ird", "back\\slash"))");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->lhs.text, "we\"ird");
  EXPECT_EQ((*f)->rhs.text, "back\\slash");
}

TEST(ParserTest, QuotedNameErrors) {
  EXPECT_FALSE(ParseQuery("connect(\"unterminated, A)").ok());
  EXPECT_FALSE(ParseQuery(R"(connect("bad\nescape", A))").ok());
  EXPECT_FALSE(ParseQuery(R"(connect("trailing\))").ok());
  // Quoted terms cannot be bound as variables.
  EXPECT_FALSE(ParseQuery("exists region \"r\" . true").ok());
}

TEST(ParserTest, ToStringQuotesNonIdentifierNames) {
  // Names that lex as identifiers print bare; others print quoted with
  // escapes — and the printed form re-parses to the same formula.
  Result<FormulaPtr> f =
      ParseQuery(R"(connect(A, "main street") and subset("we\"ird", B))");
  ASSERT_TRUE(f.ok());
  const std::string printed = (*f)->ToString();
  EXPECT_EQ(printed,
            "(connect(A, \"main street\") and subset(\"we\\\"ird\", B))");
  Result<FormulaPtr> again = ParseQuery(printed);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->ToString(), printed);
}

TEST(ParserTest, QueryNameHelpers) {
  EXPECT_TRUE(IsQueryKeyword("region"));
  EXPECT_TRUE(IsQueryKeyword("connect"));
  EXPECT_FALSE(IsQueryKeyword("A"));
  EXPECT_TRUE(IsPlainQueryIdentifier("A_1"));
  EXPECT_FALSE(IsPlainQueryIdentifier("1a"));
  EXPECT_FALSE(IsPlainQueryIdentifier("main street"));
  EXPECT_FALSE(IsPlainQueryIdentifier("cell"));  // Keyword.
  EXPECT_EQ(QuoteQueryName("main street"), "\"main street\"");
  EXPECT_EQ(QuoteQueryName("we\"ird\\x"), R"("we\"ird\\x")");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("connect(A)").ok());
  EXPECT_FALSE(ParseQuery("connect(A, B").ok());
  EXPECT_FALSE(ParseQuery("exists r . connect(r, A)").ok());  // Missing kind.
  EXPECT_FALSE(ParseQuery("exists region . connect(A, B)").ok());
  EXPECT_FALSE(ParseQuery("exists region r connect(r, A)").ok());  // No dot.
  EXPECT_FALSE(ParseQuery("connect(A, B) garbage").ok());
  EXPECT_FALSE(ParseQuery("frobnicate(A, B)").ok());
  EXPECT_FALSE(ParseQuery("exists region r . exists region r . true").ok());
  EXPECT_FALSE(ParseQuery("@").ok());
}

// --- Evaluation: paper examples ---

TEST(QueryTest, Example41SeparatesFig1aFromFig1b) {
  EXPECT_TRUE(Ask(Fig1aInstance(), kTripleIntersection));
  EXPECT_FALSE(Ask(Fig1bInstance(), kTripleIntersection));
}

TEST(QueryTest, Example42SeparatesFig1cFromFig1d) {
  EXPECT_TRUE(Ask(Fig1cInstance(), kIntersectionConnected));
  EXPECT_FALSE(Ask(Fig1dInstance(), kIntersectionConnected));
}

TEST(QueryTest, CellQuantifierTripleIntersection) {
  // The weak (cell) quantifier also separates Fig 1a / Fig 1b.
  const char* query =
      "exists cell c . subset(c, A) and subset(c, B) and subset(c, C)";
  EXPECT_TRUE(Ask(Fig1aInstance(), query));
  EXPECT_FALSE(Ask(Fig1bInstance(), query));
}

TEST(QueryTest, FourIntersectionAtoms) {
  SpatialInstance nested = NestedInstance();  // A contains B.
  EXPECT_TRUE(Ask(nested, "contains(A, B)"));
  EXPECT_TRUE(Ask(nested, "inside(B, A)"));
  EXPECT_FALSE(Ask(nested, "overlap(A, B)"));
  EXPECT_FALSE(Ask(nested, "meet(A, B)"));
  EXPECT_TRUE(Ask(nested, "connect(A, B)"));
  EXPECT_TRUE(Ask(Fig1cInstance(), "overlap(A, B)"));
  EXPECT_TRUE(Ask(DisjointPairInstance(), "disjoint(A, B)"));
  EXPECT_FALSE(Ask(DisjointPairInstance(), "connect(A, B)"));
}

TEST(QueryTest, CoversAtom) {
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(8, 8)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(0, 2), Point(4, 4)))
                  .ok());
  EXPECT_TRUE(Ask(instance, "covers(A, B)"));
  EXPECT_TRUE(Ask(instance, "coveredBy(B, A)"));
  EXPECT_FALSE(Ask(instance, "contains(A, B)"));
}

TEST(QueryTest, EqualAtom) {
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  EXPECT_TRUE(Ask(instance, "equal(A, B)"));
  EXPECT_TRUE(Ask(instance, "subset(A, B) and subset(B, A)"));
}

TEST(QueryTest, NameQuantifiers) {
  // "Some two distinct regions overlap".
  const char* some_overlap =
      "exists name a . exists name b . not (a = b) and overlap(a, b)";
  EXPECT_TRUE(Ask(Fig1cInstance(), some_overlap));
  EXPECT_FALSE(Ask(DisjointPairInstance(), some_overlap));
  // "All pairs of distinct regions overlap".
  const char* all_overlap =
      "forall name a . forall name b . (not (a = b)) implies overlap(a, b)";
  EXPECT_TRUE(Ask(Fig1aInstance(), all_overlap));
  EXPECT_FALSE(Ask(NestedInstance(), all_overlap));
}

TEST(QueryTest, PathQueryBetweenDisjointRegions) {
  // A disc region connecting A and B exists (through the exterior or any
  // face chain).
  SpatialInstance instance = DisjointPairInstance();
  EXPECT_TRUE(
      Ask(instance, "exists region r . connect(r, A) and connect(r, B)"));
}

TEST(QueryTest, QuantifiedRegionsAreDiscs) {
  // In the nested instance, the face between A's boundary and B's boundary
  // is an annulus: no *single* quantified region equals it, but its
  // completion union B's disc is a disc. Sanity: there is a region
  // containing B and contained in A.
  const char* query =
      "exists region r . subset(B, r) and subset(r, A) and not equal(r, B)";
  EXPECT_TRUE(Ask(NestedInstance(), query));
  // But no region is inside A, disjoint from B, and surrounds B — such a
  // value would be the annulus, which is not a disc. We approximate this
  // check: every region inside A avoiding B's closure must also avoid
  // "surrounding": here any disc inside A disjoint from closure(B) simply
  // does not exist because the only available face is the annulus.
  const char* annulus_query =
      "exists region r . subset(r, A) and disjoint(r, B)";
  EXPECT_FALSE(Ask(NestedInstance(), annulus_query));
}

TEST(QueryTest, TrueFalseLiterals) {
  EXPECT_TRUE(Ask(Fig1cInstance(), "true"));
  EXPECT_FALSE(Ask(Fig1cInstance(), "false"));
  EXPECT_TRUE(Ask(Fig1cInstance(), "false implies false"));
  EXPECT_TRUE(Ask(Fig1cInstance(), "connect(A, B) iff connect(B, A)"));
}

TEST(QueryTest, QuotedNamesRoundTripAgainstInstance) {
  // Region names that are not identifiers (or collide with keywords) are
  // legal in instances; quoting makes them referenceable in queries.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("main street",
                             *Region::MakeRect(Point(0, 0), Point(8, 8)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("1a", *Region::MakeRect(Point(2, 2), Point(6, 6)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("we\"ird\\name",
                             *Region::MakeRect(Point(3, 3), Point(5, 5)))
                  .ok());
  EXPECT_TRUE(Ask(instance, "contains(\"main street\", \"1a\")"));
  EXPECT_TRUE(Ask(instance, R"(inside("we\"ird\\name", "1a"))"));
  EXPECT_TRUE(Ask(instance,
                  "exists region r . subset(r, \"1a\") and "
                  "subset(r, \"main street\")"));
  // QuoteQueryName renders exactly the form the parser accepts, for every
  // name in the instance.
  for (const std::string& name : instance.names()) {
    EXPECT_TRUE(Ask(instance, "subset(" + QuoteQueryName(name) + ", " +
                                  QuoteQueryName(name) + ")"))
        << name;
  }
  // ToString round-trip through a quoted name evaluates identically.
  Result<FormulaPtr> f = ParseQuery("overlap(\"main street\", \"1a\")");
  ASSERT_TRUE(f.ok());
  Result<FormulaPtr> reparsed = ParseQuery((*f)->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  QueryEngine engine = *QueryEngine::Build(instance);
  EXPECT_EQ(*engine.Evaluate(*f), *engine.Evaluate(*reparsed));
}

TEST(QueryTest, UnknownRegionNameFails) {
  Result<QueryEngine> engine = QueryEngine::Build(Fig1cInstance());
  ASSERT_TRUE(engine.ok());
  Result<bool> result = engine->Evaluate("connect(A, Z)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, BudgetExhaustion) {
  Result<QueryEngine> engine = QueryEngine::Build(Fig1aInstance());
  ASSERT_TRUE(engine.ok());
  EvalOptions options;
  options.max_region_candidates = 2;
  // A forall over regions cannot finish with a 2-candidate budget (and
  // cannot short-circuit since the body holds for all discs).
  Result<bool> result = engine->Evaluate(
      "forall region r . connect(r, r)", options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(QueryTest, ExistsShortCircuitsUnderTinyBudget) {
  Result<QueryEngine> engine = QueryEngine::Build(Fig1aInstance());
  ASSERT_TRUE(engine.ok());
  EvalOptions options;
  options.max_region_candidates = 3;
  // The very first candidate (a single face) already satisfies the body.
  Result<bool> result =
      engine->Evaluate("exists region r . connect(r, r)", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result);
}

TEST(QueryTest, ConnectIsReflexiveAndSymmetricOnValues) {
  for (const char* query :
       {"connect(A, A)", "connect(A, B) iff connect(B, A)",
        "subset(A, A)", "equal(A, A)"}) {
    EXPECT_TRUE(Ask(Fig1cInstance(), query)) << query;
  }
}

TEST(QueryTest, DiscValueChecker) {
  // Direct checks of the quantifier range on the nested instance: faces
  // are [B-inner disc, annulus(A minus B), exterior] in some order.
  Result<QueryEngine> engine = QueryEngine::Build(NestedInstance());
  ASSERT_TRUE(engine.ok());
  const auto& faces = engine->complex().faces();
  ASSERT_EQ(faces.size(), 3u);
  int annulus = -1, inner = -1, outer = -1;
  for (size_t f = 0; f < faces.size(); ++f) {
    std::string label = LabelString(faces[f].label);
    if (label == "o-") annulus = static_cast<int>(f);
    if (label == "oo") inner = static_cast<int>(f);
    if (label == "--") outer = static_cast<int>(f);
  }
  ASSERT_NE(annulus, -1);
  std::vector<char> completed;
  std::vector<char> pick(3, 0);
  pick[annulus] = 1;
  EXPECT_FALSE(engine->IsDiscValue(pick, &completed));  // Annulus: hole.
  pick.assign(3, 0);
  pick[inner] = 1;
  EXPECT_TRUE(engine->IsDiscValue(pick, &completed));
  pick.assign(3, 0);
  pick[outer] = 1;
  EXPECT_FALSE(engine->IsDiscValue(pick, &completed));  // Plane minus disc.
  // Annulus + inner = open disc (B's closure absorbed).
  pick.assign(3, 0);
  pick[annulus] = 1;
  pick[inner] = 1;
  EXPECT_TRUE(engine->IsDiscValue(pick, &completed));
  // Everything = the whole plane, a disc.
  pick.assign(3, 1);
  EXPECT_TRUE(engine->IsDiscValue(pick, &completed));
  // Empty set is not a region.
  pick.assign(3, 0);
  EXPECT_FALSE(engine->IsDiscValue(pick, &completed));
}

// --- Deadlines, cancellation, and evaluation metrics ---

TEST(QueryDeadlineTest, ExpiredDeadlineFailsBothStrategies) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  for (EvalStrategy strategy : {EvalStrategy::kBitset, EvalStrategy::kBaseline}) {
    EvalOptions options;
    options.strategy = strategy;
    options.deadline = Deadline::Expired();
    // The entry checkpoint fires before any work, for any query shape.
    for (const char* query :
         {"connect(A, B)", "forall region r . connect(r, r)"}) {
      Result<bool> result = engine.Evaluate(query, options);
      ASSERT_FALSE(result.ok()) << query;
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << query;
    }
  }
}

TEST(QueryDeadlineTest, GenerousDeadlineMatchesUndeadlinedVerdict) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  for (const char* query : {kTripleIntersection, "connect(A, B)",
                            "forall region r . connect(r, r)"}) {
    EvalOptions bounded;
    bounded.deadline = Deadline::AfterMillis(3'600'000);
    Result<bool> with = engine.Evaluate(query, bounded);
    Result<bool> without = engine.Evaluate(query);
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(*with, *without) << query;
  }
}

TEST(QueryDeadlineTest, PreCancelledTokenFailsEvaluation) {
  QueryEngine engine = *QueryEngine::Build(Fig1cInstance());
  CancelToken token;
  token.Cancel();
  EvalOptions options;
  options.cancel = &token;
  Result<bool> result = engine.Evaluate("connect(A, B)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryDeadlineTest, ExpiredDeadlineFailsParallelFanOut) {
  QueryEngine engine = *QueryEngine::Build(Fig1cInstance());
  EvalOptions options;
  options.num_threads = 4;
  options.deadline = Deadline::Expired();
  Result<bool> result =
      engine.Evaluate("forall region r . connect(r, r)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryEvalOptionsTest, NegativeThreadCountIsInvalidArgument) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  EvalOptions options;
  options.num_threads = -3;
  Result<bool> result = engine.Evaluate("connect(A, B)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("num_threads"), std::string::npos);
}

TEST(QueryMetricsTest, EvaluationPopulatesCountersAndLatency) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  MetricsRegistry registry;
  EvalOptions options;
  options.metrics = &registry;
  Result<bool> result = engine.Evaluate(kTripleIntersection, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(registry.counter("query.evaluations")->value(), 1u);
  EXPECT_EQ(registry.histogram("query.eval_us")->count(), 1u);
  EXPECT_GT(registry.counter("query.atoms")->value(), 0u);
  EXPECT_GT(registry.counter("query.bindings")->value(), 0u);
  // The region quantifier materialized discs via the shared range.
  EXPECT_GT(registry.gauge("query.range_discs")->value(), 0);
  EXPECT_EQ(registry.counter("query.deadline_exceeded")->value(), 0u);
}

TEST(QueryMetricsTest, DeadlineExceededIsCounted) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  MetricsRegistry registry;
  EvalOptions options;
  options.metrics = &registry;
  options.deadline = Deadline::Expired();
  Result<bool> result = engine.Evaluate("connect(A, B)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(registry.counter("query.deadline_exceeded")->value(), 1u);
  EXPECT_EQ(registry.counter("query.evaluations")->value(), 1u);
}

TEST(QueryMetricsTest, CacheStatsAccumulateAcrossEvaluations) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  EXPECT_EQ(engine.cache_stats().disc_memo_hits, 0u);
  ASSERT_TRUE(engine.Evaluate(kTripleIntersection).ok());
  const QueryEngine::CacheStats first = engine.cache_stats();
  // The region quantifier materialized its range from raw candidates. (The
  // disc-check memo is only exercised by explicit IsDiscValue(CellSet)
  // calls, not by the range's face-level fast path, so no assertion here.)
  EXPECT_GT(first.materialized_discs, 0);
  EXPECT_GT(first.raw_candidates, 0);
  // A repeat evaluation reuses the materialized range: discs don't grow.
  ASSERT_TRUE(engine.Evaluate(kTripleIntersection).ok());
  const QueryEngine::CacheStats second = engine.cache_stats();
  EXPECT_EQ(second.materialized_discs, first.materialized_discs);
  EXPECT_GE(second.disc_memo_hits, first.disc_memo_hits);
}

}  // namespace
}  // namespace topodb
