#include "src/embed/embed.h"

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/invariant/validate.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

InvariantData Inv(const SpatialInstance& instance) {
  Result<InvariantData> data = ComputeInvariant(instance);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

// The Theorem 3.5 round trip: reconstruct a polygonal instance from the
// invariant alone and verify it has the same invariant.
void CheckRoundTrip(const SpatialInstance& instance, const char* what) {
  InvariantData data = Inv(instance);
  Result<SpatialInstance> rebuilt = ReconstructPolyInstance(data);
  ASSERT_TRUE(rebuilt.ok()) << what << ": " << rebuilt.status().ToString();
  // Every reconstructed region is a valid polygon with the right name.
  EXPECT_EQ(rebuilt->names(), instance.names()) << what;
  InvariantData back = Inv(*rebuilt);
  EXPECT_TRUE(*Isomorphic(data, back)) << what;
}

TEST(EmbedTest, SingleRegion) {
  CheckRoundTrip(SingleRegionInstance(), "single square");
}

TEST(EmbedTest, Fig1c) { CheckRoundTrip(Fig1cInstance(), "fig 1c"); }

TEST(EmbedTest, Fig1d) { CheckRoundTrip(Fig1dInstance(), "fig 1d"); }

TEST(EmbedTest, Fig1a) { CheckRoundTrip(Fig1aInstance(), "fig 1a"); }

TEST(EmbedTest, Fig1b) { CheckRoundTrip(Fig1bInstance(), "fig 1b"); }

TEST(EmbedTest, Fig6) { CheckRoundTrip(Fig6Instance(), "fig 6"); }

TEST(EmbedTest, Fig7bTangentDiamonds) {
  // Loops at a cut vertex: exercises truncation.
  CheckRoundTrip(Fig7bInstance(), "fig 7b");
  CheckRoundTrip(Fig7bPrimeInstance(), "fig 7b prime");
}

TEST(EmbedTest, DisjointComponents) {
  CheckRoundTrip(DisjointPairInstance(), "disjoint pair");
}

TEST(EmbedTest, NestedComponents) {
  // Exercises child placement inside a bounded face.
  CheckRoundTrip(NestedInstance(), "nested");
}

TEST(EmbedTest, Fig7aTwoChiralComponents) {
  CheckRoundTrip(Fig7aInstance(), "fig 7a");
  CheckRoundTrip(Fig7aPrimeInstance(), "fig 7a prime");
}

TEST(EmbedTest, DeeplyNested) {
  // Three levels: C inside B inside A, plus a sibling D inside A.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(40, 40)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(4, 4), Point(24, 24)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("C", *Region::MakeRect(Point(8, 8), Point(16, 16)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("D", *Region::MakeRect(Point(28, 4), Point(36, 12)))
                  .ok());
  CheckRoundTrip(instance, "deeply nested");
}

TEST(EmbedTest, TwoChildrenInSameFace) {
  // Two separate discs inside the pocket-less interior of A.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(40, 40)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(4, 4), Point(10, 10)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("C", *Region::MakeRect(Point(20, 20), Point(26, 26)))
                  .ok());
  CheckRoundTrip(instance, "two children one face");
}

TEST(EmbedTest, ReconstructionFromEvertedInvariantDiffers) {
  // Reconstruct from the everted Fig 6 invariant: the result must realize
  // the everted structure, not the original.
  InvariantData data = Inv(Fig6Instance());
  int pocket = -1;
  for (size_t f = 0; f < data.faces.size(); ++f) {
    if (!data.faces[f].unbounded &&
        LabelString(data.faces[f].label) == "---") {
      pocket = static_cast<int>(f);
    }
  }
  ASSERT_NE(pocket, -1);
  InvariantData everted = *data.WithExteriorFace(pocket);
  Result<SpatialInstance> rebuilt = ReconstructPolyInstance(everted);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  InvariantData back = Inv(*rebuilt);
  EXPECT_TRUE(*Isomorphic(everted, back));
  EXPECT_FALSE(*Isomorphic(data, back));
  // And the reconstruction is itself a valid invariant realization.
  EXPECT_TRUE(ValidateInvariant(back).ok());
}

TEST(EmbedTest, EmptyInstance) {
  Result<SpatialInstance> rebuilt =
      ReconstructPolyInstance(Inv(SpatialInstance()));
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->empty());
}

TEST(EmbedTest, OutputIsPolygonalAndValid) {
  Result<SpatialInstance> rebuilt =
      ReconstructPolyInstance(Inv(Fig1cInstance()));
  ASSERT_TRUE(rebuilt.ok());
  for (const auto& [name, region] : rebuilt->regions()) {
    EXPECT_TRUE(region.boundary().Validate().ok()) << name;
  }
}

}  // namespace
}  // namespace topodb
