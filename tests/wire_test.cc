// Wire-protocol golden tests: byte-exact encode vectors for every frame
// type (the wire format is a compatibility surface — any byte change here
// is a protocol break and must be deliberate), decode round trips, and
// malformed-frame cases that must fail with clean Status errors, never
// crash or read out of bounds.

#include <initializer_list>
#include <string>

#include <gtest/gtest.h>

#include "src/server/wire.h"

namespace topodb {
namespace {

std::string Bytes(std::initializer_list<int> bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (int b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

// The shared 4-byte magic + version prefix of every frame (wire v2).
std::string MagicV2() { return Bytes({0x54, 0x50, 0x44, 0x42, 0x02, 0x00}); }

TEST(WireGoldenTest, PingRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kPing);
  header.request_id = 7;
  header.deadline_budget_ms = 250;
  const std::string expected =
      MagicV2() + Bytes({0x01, 0x00,                                // opcode
                         0x07, 0, 0, 0, 0, 0, 0, 0,                // id
                         0xfa, 0x00, 0x00, 0x00,                   // budget
                         0x00, 0x00, 0x00, 0x00});                 // len
  EXPECT_EQ(EncodeFrame(header, ""), expected);
}

TEST(WireGoldenTest, ComputeInvariantRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kComputeInvariant);
  header.request_id = 0x0102030405060708ull;
  std::string payload;
  AppendInstanceRef(&payload, InstanceRef::Text("hi"));
  const std::string expected =
      MagicV2() + Bytes({0x02, 0x00,                                // opcode
                         0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
                         0x00, 0x00, 0x00, 0x00,                   // budget
                         0x07, 0x00, 0x00, 0x00,                   // len
                         0x00,  // ref kind: inline text
                         0x02, 0x00, 0x00, 0x00, 'h', 'i'});
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, BatchInvariantsRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kBatchInvariants);
  header.request_id = 2;
  std::string payload;
  AppendU32(&payload, 2);
  AppendInstanceRef(&payload, InstanceRef::Text("a"));
  AppendInstanceRef(&payload, InstanceRef::Name("bc"));
  const std::string expected =
      MagicV2() + Bytes({0x03, 0x00,
                         0x02, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x11, 0x00, 0x00, 0x00,  // 4 + 6 + 7 payload bytes
                         0x02, 0x00, 0x00, 0x00,                   // count
                         0x00, 0x01, 0x00, 0x00, 0x00, 'a',        // text ref
                         0x01, 0x02, 0x00, 0x00, 0x00, 'b', 'c'}); // name ref
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, EvalQueryRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kEvalQuery);
  header.request_id = 3;
  header.deadline_budget_ms = 1;
  std::string payload;
  AppendInstanceRef(&payload, InstanceRef::Text("I"));
  AppendWireString(&payload, "Q");
  const std::string expected =
      MagicV2() + Bytes({0x04, 0x00,
                         0x03, 0, 0, 0, 0, 0, 0, 0,
                         0x01, 0x00, 0x00, 0x00,
                         0x0b, 0x00, 0x00, 0x00,
                         0x00, 0x01, 0x00, 0x00, 0x00, 'I',
                         0x01, 0x00, 0x00, 0x00, 'Q'});
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, IsoCheckRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kIsoCheck);
  header.request_id = 4;
  std::string payload;
  AppendInstanceRef(&payload, InstanceRef::Text("A"));
  AppendInstanceRef(&payload, InstanceRef::Name("B"));
  const std::string expected =
      MagicV2() + Bytes({0x05, 0x00,
                         0x04, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x0c, 0x00, 0x00, 0x00,
                         0x00, 0x01, 0x00, 0x00, 0x00, 'A',
                         0x01, 0x01, 0x00, 0x00, 0x00, 'B'});
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, MetricsRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kMetrics);
  header.request_id = 5;
  const std::string expected =
      MagicV2() + Bytes({0x06, 0x00,
                         0x05, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(EncodeFrame(header, ""), expected);
}

TEST(WireGoldenTest, LoadRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kLoad);
  header.request_id = 6;
  std::string payload;
  AppendWireString(&payload, "n");
  AppendWireString(&payload, "a: (0 0, 1 0, 1 1)");
  const std::string expected =
      MagicV2() + Bytes({0x07, 0x00,
                         0x06, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x1b, 0x00, 0x00, 0x00,  // 5 + 22 payload bytes
                         0x01, 0x00, 0x00, 0x00, 'n',
                         0x12, 0x00, 0x00, 0x00,
                         'a', ':', ' ', '(', '0', ' ', '0', ',', ' ',
                         '1', ' ', '0', ',', ' ', '1', ' ', '1', ')'});
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, ListRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kList);
  header.request_id = 8;
  const std::string expected =
      MagicV2() + Bytes({0x08, 0x00,
                         0x08, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x00, 0x00, 0x00, 0x00});
  EXPECT_EQ(EncodeFrame(header, ""), expected);
}

TEST(WireGoldenTest, DescribeRequestFrame) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kDescribe);
  header.request_id = 9;
  std::string payload;
  AppendWireString(&payload, "fig6");
  const std::string expected =
      MagicV2() + Bytes({0x09, 0x00,
                         0x09, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x08, 0x00, 0x00, 0x00,
                         0x04, 0x00, 0x00, 0x00, 'f', 'i', 'g', '6'});
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, OkResponseFrame) {
  FrameHeader header;
  header.opcode =
      static_cast<uint16_t>(Opcode::kPing) | kWireResponseBit;  // 0x81
  header.request_id = 7;
  const std::string payload = EncodeResponsePayload(Status::OK(), "");
  const std::string expected =
      MagicV2() + Bytes({0x81, 0x00,
                         0x07, 0, 0, 0, 0, 0, 0, 0,
                         0x00, 0x00, 0x00, 0x00,
                         0x08, 0x00, 0x00, 0x00,
                         0x00, 0x00, 0x00, 0x00,   // wire status OK
                         0x00, 0x00, 0x00, 0x00}); // empty message
  EXPECT_EQ(EncodeFrame(header, payload), expected);
}

TEST(WireGoldenTest, DataLossResponsePayload) {
  // Wire status 10 is the store-corruption signal; clients must be able
  // to distinguish it from Internal.
  const std::string payload =
      EncodeResponsePayload(Status::DataLoss("bad"), "");
  EXPECT_EQ(payload, Bytes({0x0a, 0x00, 0x00, 0x00,
                            0x03, 0x00, 0x00, 0x00, 'b', 'a', 'd'}));
}

TEST(WireGoldenTest, UnavailableResponsePayload) {
  // Load-shed responses are the backpressure signal; their encoding (wire
  // status 8) is part of the protocol contract.
  const std::string payload =
      EncodeResponsePayload(Status::Unavailable("full"), "");
  EXPECT_EQ(payload, Bytes({0x08, 0x00, 0x00, 0x00,
                            0x04, 0x00, 0x00, 0x00, 'f', 'u', 'l', 'l'}));
}

TEST(WireRoundTripTest, HeaderSurvivesEncodeDecode) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kEvalQuery);
  header.request_id = 0xdeadbeefcafef00dull;
  header.deadline_budget_ms = 12345;
  const std::string frame = EncodeFrame(header, "xyz");
  ASSERT_EQ(frame.size(), kWireHeaderBytes + 3);
  const Result<FrameHeader> decoded =
      DecodeFrameHeader(std::string_view(frame).substr(0, kWireHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->opcode, header.opcode);
  EXPECT_EQ(decoded->request_id, header.request_id);
  EXPECT_EQ(decoded->deadline_budget_ms, 12345u);
  EXPECT_EQ(decoded->payload_len, 3u);
}

TEST(WireRoundTripTest, ResponsePayloadSurvivesEncodeDecode) {
  const std::string payload =
      EncodeResponsePayload(Status::DeadlineExceeded("spent"), "");
  const Result<DecodedResponse> decoded = DecodeResponsePayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->status.message(), "spent");
  EXPECT_TRUE(decoded->body.empty());

  const std::string ok_payload =
      EncodeResponsePayload(Status::OK(), "body-bytes");
  const Result<DecodedResponse> ok = DecodeResponsePayload(ok_payload);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->status.ok());
  EXPECT_EQ(ok->body, "body-bytes");
}

TEST(WireRoundTripTest, EveryStatusCodeSurvivesTheWire) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kInvalidInstance, StatusCode::kNotFound,
        StatusCode::kUnsupported, StatusCode::kResourceExhausted,
        StatusCode::kParseError, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kInternal,
        StatusCode::kDataLoss}) {
    EXPECT_EQ(CodeFromWireStatus(WireStatusFromCode(code)), code);
  }
  // Codes from a newer peer degrade to Internal instead of failing.
  EXPECT_EQ(CodeFromWireStatus(0xffffffffu), StatusCode::kInternal);
}

TEST(WireRoundTripTest, InstanceRefSurvivesEncodeDecode) {
  for (const InstanceRef& ref :
       {InstanceRef::Text("a: (0 0, 1 0, 1 1)"), InstanceRef::Name("fig6"),
        InstanceRef::Text("")}) {
    std::string payload;
    AppendInstanceRef(&payload, ref);
    WireReader reader(payload);
    const Result<InstanceRef> decoded = reader.ReadInstanceRef();
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, ref.kind);
    EXPECT_EQ(decoded->value, ref.value);
    EXPECT_TRUE(reader.ExpectEnd().ok());
  }
}

TEST(WireMalformedTest, TruncatedHeaderIsCleanError) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kPing);
  const std::string frame = EncodeFrame(header, "");
  for (size_t len = 0; len < kWireHeaderBytes; ++len) {
    const Result<FrameHeader> decoded =
        DecodeFrameHeader(std::string_view(frame).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "accepted " << len << "-byte header";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireMalformedTest, BadMagicIsCleanError) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kPing);
  std::string frame = EncodeFrame(header, "");
  frame[0] = 'X';
  const Result<FrameHeader> decoded = DecodeFrameHeader(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformedTest, UnknownVersionIsUnsupported) {
  FrameHeader header;
  header.version = 9;
  header.opcode = static_cast<uint16_t>(Opcode::kPing);
  const Result<FrameHeader> decoded =
      DecodeFrameHeader(EncodeFrame(header, ""));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnsupported);
}

TEST(WireMalformedTest, OversizedLengthIsRejectedBeforeAllocation) {
  // A corrupted length field must be rejected from the header alone —
  // the peer never tries to buffer the announced bytes.
  std::string frame = MagicV2() + Bytes({0x01, 0x00,
                                         0, 0, 0, 0, 0, 0, 0, 0,
                                         0, 0, 0, 0,
                                         0xff, 0xff, 0xff, 0xff});
  const Result<FrameHeader> decoded = DecodeFrameHeader(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformedTest, UnknownInstanceRefKindIsCleanError) {
  // Kind bytes beyond kCatalogName must be rejected, not misread: a newer
  // client cannot make this server treat a name as inline text.
  std::string payload;
  AppendU8(&payload, 2);
  AppendWireString(&payload, "x");
  WireReader reader(payload);
  const Result<InstanceRef> decoded = reader.ReadInstanceRef();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformedTest, TruncatedInstanceRefIsCleanError) {
  std::string payload;
  AppendInstanceRef(&payload, InstanceRef::Name("fig6"));
  for (size_t len = 0; len < payload.size(); ++len) {
    WireReader reader(std::string_view(payload).substr(0, len));
    const Result<InstanceRef> decoded = reader.ReadInstanceRef();
    ASSERT_FALSE(decoded.ok()) << "accepted " << len << " bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireMalformedTest, TruncatedWireStringIsCleanError) {
  std::string payload;
  AppendU32(&payload, 100);  // Announces 100 bytes...
  payload += "short";        // ...delivers 5.
  WireReader reader(payload);
  const Result<std::string> s = reader.ReadWireString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformedTest, ReaderRejectsTruncationAndTrailingBytes) {
  std::string payload;
  AppendU32(&payload, 7);
  WireReader reader(payload);
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU8().ok());   // Past the end.
  EXPECT_FALSE(reader.ReadU64().ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());

  WireReader trailing(payload);
  EXPECT_FALSE(trailing.ExpectEnd().ok());  // 4 unread bytes.
}

TEST(WireMalformedTest, TruncatedResponsePayloadIsCleanError) {
  const std::string payload =
      EncodeResponsePayload(Status::NotFound("missing"), "");
  for (size_t len = 0; len < payload.size(); ++len) {
    const Result<DecodedResponse> decoded =
        DecodeResponsePayload(std::string_view(payload).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "accepted " << len << " bytes";
  }
}

TEST(WireOpcodeTest, KnownOpcodesAndNames) {
  for (Opcode op : {Opcode::kPing, Opcode::kComputeInvariant,
                    Opcode::kBatchInvariants, Opcode::kEvalQuery,
                    Opcode::kIsoCheck, Opcode::kMetrics, Opcode::kLoad,
                    Opcode::kList, Opcode::kDescribe}) {
    EXPECT_TRUE(IsKnownOpcode(static_cast<uint16_t>(op)));
  }
  EXPECT_FALSE(IsKnownOpcode(0));
  EXPECT_FALSE(IsKnownOpcode(10));
  EXPECT_FALSE(IsKnownOpcode(static_cast<uint16_t>(Opcode::kPing) |
                             kWireResponseBit));
  EXPECT_EQ(OpcodeName(static_cast<uint16_t>(Opcode::kPing)), "PING");
  EXPECT_EQ(OpcodeName(static_cast<uint16_t>(Opcode::kBatchInvariants)),
            "BATCH_INVARIANTS");
  EXPECT_EQ(OpcodeName(static_cast<uint16_t>(Opcode::kLoad)), "LOAD");
  EXPECT_EQ(OpcodeName(static_cast<uint16_t>(Opcode::kList)), "LIST");
  EXPECT_EQ(OpcodeName(static_cast<uint16_t>(Opcode::kDescribe)),
            "DESCRIBE");
  EXPECT_EQ(OpcodeName(static_cast<uint16_t>(Opcode::kPing) |
                       kWireResponseBit),
            "PING_RESPONSE");
  EXPECT_EQ(OpcodeName(99), "?");
}

}  // namespace
}  // namespace topodb
