// Differential fuzz for the four-stage predicate filter (DESIGN.md §5e-f):
// every filtered predicate must return bit-for-bit the decision of its
// *Exact variant, on exactly the input families where a buggy filter would
// diverge — collinear triples (the zero a static filter must never
// mis-certify), one-ulp perturbations of collinear configurations (signs
// far below double noise), and coordinates that overflow or underflow
// double range entirely.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/bigint.h"
#include "src/base/rational.h"
#include "src/geom/point.h"
#include "src/geom/predicates.h"

namespace topodb {
namespace {

// One comparison of every predicate on a triple/quadruple of points.
// Returns the number of checks performed so tests can assert coverage.
void ExpectAllPredicatesAgree(const Point& a, const Point& b, const Point& c,
                              const Point& d) {
  ASSERT_EQ(CurrentPredicateMode(), PredicateMode::kFiltered);
  EXPECT_EQ(Orientation(a, b, c), OrientationExact(a, b, c))
      << a.ToString() << " " << b.ToString() << " " << c.ToString();
  EXPECT_EQ(OnSegment(c, a, b), OnSegmentExact(c, a, b));
  EXPECT_EQ(StrictlyInsideSegment(c, a, b),
            StrictlyInsideSegmentExact(c, a, b));
  if (!(a == b) && !(c == d)) {
    const Point u = b - a;
    const Point v = d - c;
    EXPECT_EQ(CcwDirectionLess(u, v), CcwDirectionLessExact(u, v));
    EXPECT_EQ(CcwDirectionLess(v, u), CcwDirectionLessExact(v, u));
    EXPECT_EQ(SameDirection(u, v), SameDirectionExact(u, v));
    EXPECT_EQ(CompareAlongDirection(a, c, u),
              CompareAlongDirectionExact(a, c, u));
  }
  const SegmentIntersection filtered = IntersectSegments(a, b, c, d);
  const SegmentIntersection exact = IntersectSegmentsExact(a, b, c, d);
  EXPECT_EQ(static_cast<int>(filtered.kind), static_cast<int>(exact.kind))
      << a.ToString() << "-" << b.ToString() << " x " << c.ToString() << "-"
      << d.ToString();
  if (filtered.kind == exact.kind &&
      exact.kind != SegmentIntersection::Kind::kNone) {
    // Bit-for-bit: the same exact rational point, not merely an equal one.
    EXPECT_EQ(filtered.p0.x.num().ToString(), exact.p0.x.num().ToString());
    EXPECT_EQ(filtered.p0.x.den().ToString(), exact.p0.x.den().ToString());
    EXPECT_EQ(filtered.p0.y.num().ToString(), exact.p0.y.num().ToString());
    if (exact.kind == SegmentIntersection::Kind::kOverlap) {
      EXPECT_EQ(filtered.p1 == exact.p1, true);
    }
  }
}

TEST(PredicateFilterDifferentialTest, CollinearTriples) {
  // Exact collinearity is the adversarial case for the static stage: the
  // determinant is exactly zero, and any filter that certifies a nonzero
  // sign from rounding noise breaks the arrangement. Points are a + t*dir
  // for rational t, over directions with small and large slopes.
  std::mt19937_64 rng(1);
  const Point dirs[] = {{1, 0}, {0, 1}, {1, 1}, {3, -7}, {1000003, 999999},
                        {-5, 12}, {1, -1}};
  for (const Point& dir : dirs) {
    for (int iter = 0; iter < 40; ++iter) {
      const Point origin(static_cast<int64_t>(rng() % 2001) - 1000,
                         static_cast<int64_t>(rng() % 2001) - 1000);
      const auto t = [&rng]() {
        return Rational(static_cast<int64_t>(rng() % 41) - 20,
                        static_cast<int64_t>(rng() % 16) + 1);
      };
      const Point p = origin + dir * t();
      const Point q = origin + dir * t();
      const Point r = origin + dir * t();
      EXPECT_EQ(Orientation(p, q, r), 0) << p.ToString();
      ExpectAllPredicatesAgree(p, q, r, origin);
    }
  }
}

TEST(PredicateFilterDifferentialTest, OneUlpPerturbations) {
  // Start from a collinear triple, then push one coordinate off the line
  // by +/- 1/2^k for k up to far beyond double precision. The true sign is
  // the perturbation's sign; doubles see zero from k ~ 60 on, so a filter
  // that trusts an uncertified double result inverts or zeroes these.
  std::mt19937_64 rng(2);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t x0 = static_cast<int64_t>(rng() % 201) - 100;
    const int64_t y0 = static_cast<int64_t>(rng() % 201) - 100;
    const int64_t dx = static_cast<int64_t>(rng() % 9) + 1;
    const int64_t dy = static_cast<int64_t>(rng() % 9) - 4;
    const Point a(x0, y0);
    const Point b(x0 + dx, y0 + dy);
    const Point mid = a + (b - a) * Rational(1, 2);
    const int k = 40 + static_cast<int>(rng() % 120);  // 2^-40 .. 2^-159.
    const Rational eps(BigInt((rng() % 2) ? 1 : -1),
                       BigInt(1).ShiftLeft(k));
    const Point off(mid.x, mid.y + eps);
    // The sign is decided by eps (b-a has positive x component).
    EXPECT_EQ(Orientation(a, b, off), eps.sign() > 0 ? 1 : -1)
        << "k=" << k;
    EXPECT_FALSE(OnSegment(off, a, b));
    ExpectAllPredicatesAgree(a, b, off, mid);
    ExpectAllPredicatesAgree(a, off, b, mid);
  }
}

TEST(PredicateFilterDifferentialTest, OverflowAndUnderflowCoordinates) {
  // Coordinates far outside double range: 10^400 overflows to inf, 10^-400
  // underflows to 0. The static stage must decline (bit-length caps), the
  // interval stage saturates, and decisions still match the exact path.
  Rational huge(1);
  const Rational ten(10);
  for (int i = 0; i < 400; ++i) huge = huge * ten;
  const Rational tiny = Rational(1) / huge;

  std::mt19937_64 rng(3);
  const Rational scales[] = {huge, tiny};
  for (const Rational& s : scales) {
    for (int iter = 0; iter < 8; ++iter) {
      const auto coord = [&]() {
        return Rational(static_cast<int64_t>(rng() % 2001) - 1000,
                        static_cast<int64_t>(rng() % 64) + 1) * s;
      };
      const Point a(coord(), coord());
      const Point b(coord(), coord());
      const Point c(coord(), coord());
      const Point d(coord(), coord());
      ExpectAllPredicatesAgree(a, b, c, d);
      // Mixed magnitudes: one tiny point among huge ones (and vice versa)
      // stresses the interval stage's saturation arithmetic.
      const Point m(coord() * tiny, coord());
      ExpectAllPredicatesAgree(a, b, m, d);
    }
  }
  // Doubly-extreme scales (10^800): exact intersection points at this
  // magnitude cost seconds of bigint gcd each, so stick to the sign
  // predicates, which are the filter stages under test anyway.
  for (const Rational& s : {huge * huge, tiny * tiny}) {
    for (int iter = 0; iter < 4; ++iter) {
      const auto coord = [&]() {
        return Rational(static_cast<int64_t>(rng() % 2001) - 1000,
                        static_cast<int64_t>(rng() % 64) + 1) * s;
      };
      const Point a(coord(), coord());
      const Point b(coord(), coord());
      const Point c(coord(), coord());
      EXPECT_EQ(Orientation(a, b, c), OrientationExact(a, b, c));
      EXPECT_EQ(OnSegment(c, a, b), OnSegmentExact(c, a, b));
      EXPECT_EQ(StrictlyInsideSegment(c, a, b),
                StrictlyInsideSegmentExact(c, a, b));
    }
  }
  // Degenerate-but-extreme: collinear triples at overflow scale.
  const Point p(huge, huge);
  const Point q(huge * Rational(2), huge * Rational(2));
  const Point r(huge * Rational(3), huge * Rational(3));
  EXPECT_EQ(Orientation(p, q, r), 0);
  ExpectAllPredicatesAgree(p, q, r, p);
  EXPECT_TRUE(OnSegment(q, p, r));
  EXPECT_TRUE(StrictlyInsideSegment(q, p, r));
}

TEST(PredicateFilterDifferentialTest, RandomSegmentPairsAndDegeneracies) {
  // Broad random sweep plus the classic degeneracies: shared endpoints,
  // T-junctions, containment, identical segments, zero-length segments.
  std::mt19937_64 rng(4);
  const auto coord = [&rng]() {
    return Rational(static_cast<int64_t>(rng() % 401) - 200,
                    static_cast<int64_t>(rng() % 8) + 1);
  };
  for (int iter = 0; iter < 300; ++iter) {
    const Point a(coord(), coord());
    const Point b(coord(), coord());
    const Point c(coord(), coord());
    const Point d(coord(), coord());
    ExpectAllPredicatesAgree(a, b, c, d);
    ExpectAllPredicatesAgree(a, b, b, c);  // Shared endpoint.
    ExpectAllPredicatesAgree(a, b, a, b);  // Identical segments.
    ExpectAllPredicatesAgree(a, a, c, d);  // Degenerate first segment.
    const Point mid = a + (b - a) * Rational(1, 3);
    ExpectAllPredicatesAgree(a, b, mid, c);  // T-junction at 1/3.
    ExpectAllPredicatesAgree(a, b, mid, mid);
  }
}

TEST(PredicateFilterStatsTest, StagesActuallyResolveWork) {
  // Sanity on the observability contract: easy integer inputs are resolved
  // by the static stage; adversarial perturbations reach the exact stage.
  const PredicateFilterStats before = LocalPredicateFilterStats();
  EXPECT_EQ(Orientation(Point(0, 0), Point(10, 0), Point(5, 3)), 1);
  const PredicateFilterStats after_easy = LocalPredicateFilterStats();
  EXPECT_EQ(after_easy.static_hits, before.static_hits + 1);
  EXPECT_EQ(after_easy.exact_fallbacks, before.exact_fallbacks);

  // A perturbation that survives the interval stage needs cancellation:
  // det = 10 * (1/2 + eps) - 1 * 5 = 10 * eps, but the interval for
  // 1/2 + eps is one ulp wide, so after scaling and subtracting, the
  // enclosure of the determinant straddles zero and only the rational
  // stage can decide the sign.
  const Rational eps(BigInt(1), BigInt(1).ShiftLeft(200));
  const Point off(Rational(5), Rational(1, 2) + eps);
  EXPECT_EQ(Orientation(Point(0, 0), Point(10, 1), off), 1);
  const PredicateFilterStats after_hard = LocalPredicateFilterStats();
  EXPECT_EQ(after_hard.exact_fallbacks, after_easy.exact_fallbacks + 1);
}

TEST(PredicateFilterModeTest, ExactModeBypassesFilters) {
  ScopedPredicateMode exact_mode(PredicateMode::kExact);
  ASSERT_EQ(CurrentPredicateMode(), PredicateMode::kExact);
  const PredicateFilterStats before = LocalPredicateFilterStats();
  EXPECT_EQ(Orientation(Point(0, 0), Point(10, 0), Point(5, 3)), 1);
  EXPECT_TRUE(OnSegment(Point(5, 0), Point(0, 0), Point(10, 0)));
  const PredicateFilterStats after = LocalPredicateFilterStats();
  // Exact mode runs pure rational arithmetic without touching the stats.
  EXPECT_EQ(after.static_hits, before.static_hits);
  EXPECT_EQ(after.interval_hits, before.interval_hits);
  EXPECT_EQ(after.exact_fallbacks, before.exact_fallbacks);
}

}  // namespace
}  // namespace topodb
