#include "src/workload/generators.h"

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/invariant/validate.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

TEST(WorkloadTest, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(43);
  EXPECT_NE(SplitMix64(42).Next(), c.Next());
}

TEST(WorkloadTest, ChainCellCountsLinear) {
  for (int n : {1, 2, 5, 9}) {
    Result<SpatialInstance> instance = ChainInstance(n);
    ASSERT_TRUE(instance.ok());
    Result<InvariantData> data = ComputeInvariant(*instance);
    ASSERT_TRUE(data.ok());
    EXPECT_TRUE(ValidateInvariant(*data).ok());
    if (n > 1) {
      // Each adjacent staggered pair crosses at exactly 2 points.
      EXPECT_EQ(data->vertices.size(), 2u * (n - 1));
    }
  }
}

TEST(WorkloadTest, CombMatchesFig1Family) {
  // CombInstance(1) is homeomorphic to Fig 1c, CombInstance(2) to Fig 1d.
  Result<SpatialInstance> one = CombInstance(1);
  Result<SpatialInstance> two = CombInstance(2);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(*Isomorphic(*ComputeInvariant(*one),
                         *ComputeInvariant(Fig1cInstance())));
  EXPECT_TRUE(*Isomorphic(*ComputeInvariant(*two),
                         *ComputeInvariant(Fig1dInstance())));
  // Teeth count is a topological invariant of the family.
  EXPECT_FALSE(*Isomorphic(*ComputeInvariant(*CombInstance(3)),
                          *ComputeInvariant(*CombInstance(4))));
}

TEST(WorkloadTest, CombPocketCount) {
  for (int teeth : {1, 2, 3, 5}) {
    Result<SpatialInstance> instance = CombInstance(teeth);
    ASSERT_TRUE(instance.ok());
    Result<InvariantData> data = ComputeInvariant(*instance);
    ASSERT_TRUE(data.ok());
    int pockets = 0;
    for (const auto& face : data->faces) {
      if (!face.unbounded && LabelString(face.label) == "--") ++pockets;
    }
    EXPECT_EQ(pockets, teeth - 1);
  }
}

TEST(WorkloadTest, NestedRingsContainmentChain) {
  Result<SpatialInstance> instance = NestedRingsInstance(4);
  ASSERT_TRUE(instance.ok());
  Result<InvariantData> data = ComputeInvariant(*instance);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->ComponentCount(), 4);
  EXPECT_TRUE(ValidateInvariant(*data).ok());
}

TEST(WorkloadTest, GridAndFlowerValidate) {
  Result<SpatialInstance> grid = RectGridInstance(3, 3);
  ASSERT_TRUE(grid.ok());
  EXPECT_TRUE(ValidateInvariant(*ComputeInvariant(*grid)).ok());
  Result<SpatialInstance> flower = FlowerInstance(5);
  ASSERT_TRUE(flower.ok());
  EXPECT_TRUE(ValidateInvariant(*ComputeInvariant(*flower)).ok());
}

TEST(WorkloadTest, RandomInstancesValidateAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Result<SpatialInstance> instance = RandomRectInstance(6, 40, seed);
    ASSERT_TRUE(instance.ok());
    Result<InvariantData> data = ComputeInvariant(*instance);
    ASSERT_TRUE(data.ok()) << "seed " << seed;
    EXPECT_TRUE(ValidateInvariant(*data).ok()) << "seed " << seed;
  }
}

TEST(WorkloadTest, GeneratorsRejectBadParameters) {
  EXPECT_FALSE(ChainInstance(0).ok());
  EXPECT_FALSE(RectGridInstance(0, 3).ok());
  EXPECT_FALSE(NestedRingsInstance(0).ok());
  EXPECT_FALSE(CombInstance(0).ok());
  EXPECT_FALSE(FlowerInstance(0).ok());
  EXPECT_FALSE(RandomRectInstance(0, 40, 1).ok());
  EXPECT_FALSE(RandomRectInstance(5, 2, 1).ok());
}

}  // namespace
}  // namespace topodb
