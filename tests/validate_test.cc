#include "src/invariant/validate.h"

#include <gtest/gtest.h>

#include "src/invariant/data.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

InvariantData Inv(const SpatialInstance& instance) {
  Result<InvariantData> data = ComputeInvariant(instance);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

TEST(ValidateTest, AcceptsAllFixtureInvariants) {
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig6Instance(), Fig7aInstance(), Fig7aPrimeInstance(),
        Fig7bInstance(), Fig7bPrimeInstance(), SingleRegionInstance(),
        NestedInstance(), DisjointPairInstance()}) {
    InvariantData data = Inv(instance);
    EXPECT_TRUE(ValidateInvariant(data).ok())
        << ValidateInvariant(data).ToString() << " for "
        << data.DebugString();
  }
}

TEST(ValidateTest, AcceptsEmpty) {
  EXPECT_TRUE(ValidateInvariant(Inv(SpatialInstance())).ok());
}

TEST(ValidateTest, RejectsBrokenRotation) {
  // Condition (4): splitting a vertex rotation into two orbits. In Fig 1c
  // each vertex has 4 darts in one cycle; swapping two successors makes
  // two 2-cycles.
  InvariantData data = Inv(Fig1cInstance());
  // Find a vertex with four darts and rewire.
  std::vector<std::vector<int>> darts_at(data.vertices.size());
  for (int d = 0; d < data.num_darts(); ++d) {
    darts_at[data.Origin(d)].push_back(d);
  }
  ASSERT_EQ(darts_at[0].size(), 4u);
  int d0 = darts_at[0][0];
  int d1 = data.next_ccw[d0];
  int d2 = data.next_ccw[d1];
  int d3 = data.next_ccw[d2];
  // Two 2-cycles: d0 <-> d1 and d2 <-> d3.
  data.next_ccw[d0] = d1;
  data.next_ccw[d1] = d0;
  data.next_ccw[d2] = d3;
  data.next_ccw[d3] = d2;
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsNonPlanarRotation) {
  // Condition (6): perturbing the rotation at a vertex changes the face
  // walks; the resulting embedding violates Euler's formula (positive
  // genus) or breaks face assignments — either way it is rejected.
  InvariantData data = Inv(Fig1cInstance());
  std::vector<std::vector<int>> darts_at(data.vertices.size());
  for (int d = 0; d < data.num_darts(); ++d) {
    darts_at[data.Origin(d)].push_back(d);
  }
  int a = darts_at[0][0];
  int b = data.next_ccw[a];
  int c = data.next_ccw[b];
  int d = data.next_ccw[c];
  // Swap the order of b and c in the cyclic rotation: a -> c -> b -> d.
  data.next_ccw[a] = c;
  data.next_ccw[c] = b;
  data.next_ccw[b] = d;
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsFaceAssignmentDrift) {
  // Condition (5): face must be constant along each boundary walk.
  InvariantData data = Inv(Fig1cInstance());
  int d = 0;
  int other_face = (data.face_of_dart[d] + 1) % data.faces.size();
  data.face_of_dart[d] = other_face;
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsTwoUnboundedFaces) {
  InvariantData data = Inv(Fig1dInstance());
  for (auto& face : data.faces) face.unbounded = true;
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsMislabeledExterior) {
  InvariantData data = Inv(Fig1cInstance());
  data.faces[data.exterior_face].label[0] = Sign::kInterior;
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsBoundaryLabeledFace) {
  InvariantData data = Inv(Fig1cInstance());
  for (auto& face : data.faces) {
    if (!face.unbounded) {
      face.label[0] = Sign::kBoundary;
      break;
    }
  }
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsIncoherentEdgeLabel) {
  InvariantData data = Inv(Fig1cInstance());
  // Flip a non-boundary component of an edge label.
  for (auto& edge : data.edges) {
    for (size_t r = 0; r < edge.label.size(); ++r) {
      if (edge.label[r] == Sign::kExterior) {
        edge.label[r] = Sign::kInterior;
        EXPECT_FALSE(ValidateInvariant(data).ok());
        return;
      }
    }
  }
  FAIL() << "no mutable edge label found";
}

TEST(ValidateTest, RejectsVertexLabelMismatch) {
  InvariantData data = Inv(Fig1cInstance());
  data.vertices[0].label[0] = Sign::kExterior;  // Was boundary.
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsEmptyRegion) {
  // A region whose label never appears as interior.
  InvariantData data = Inv(Fig1cInstance());
  for (auto& face : data.faces) {
    if (face.label[1] == Sign::kInterior) face.label[1] = Sign::kExterior;
  }
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsRegionCoveringExterior) {
  InvariantData data = Inv(Fig1cInstance());
  // Invert region 0 everywhere: now it "contains" the exterior face.
  for (auto& face : data.faces) {
    if (face.label[0] == Sign::kInterior) face.label[0] = Sign::kExterior;
    else face.label[0] = Sign::kInterior;
  }
  for (auto& edge : data.edges) {
    if (edge.label[0] == Sign::kInterior) edge.label[0] = Sign::kExterior;
    else if (edge.label[0] == Sign::kExterior) edge.label[0] = Sign::kInterior;
  }
  for (auto& vertex : data.vertices) {
    if (vertex.label[0] == Sign::kInterior) vertex.label[0] = Sign::kExterior;
    else if (vertex.label[0] == Sign::kExterior) {
      vertex.label[0] = Sign::kInterior;
    }
  }
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsEdgeOnNoBoundary) {
  InvariantData data = Inv(Fig1cInstance());
  for (size_t r = 0; r < data.edges[0].label.size(); ++r) {
    if (data.edges[0].label[r] == Sign::kBoundary) {
      data.edges[0].label[r] =
          data.faces[data.face_of_dart[0]].label[r];
    }
  }
  EXPECT_FALSE(ValidateInvariant(data).ok());
}

TEST(ValidateTest, RejectsOuterCycleOffFace) {
  InvariantData data = Inv(Fig1dInstance());
  for (auto& face : data.faces) {
    if (face.outer_cycle_dart >= 0) {
      // Point the outer cycle at a dart of a different face.
      for (int d = 0; d < data.num_darts(); ++d) {
        if (data.face_of_dart[d] != data.face_of_dart[face.outer_cycle_dart]) {
          face.outer_cycle_dart = d;
          EXPECT_FALSE(ValidateInvariant(data).ok());
          return;
        }
      }
    }
  }
  FAIL() << "no bounded face found";
}

TEST(ValidateTest, EulerHoldsOnFixtures) {
  // Connected fixtures satisfy |F| = |E| - |V| + 2 globally.
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig7bInstance()}) {
    InvariantData data = Inv(instance);
    ASSERT_EQ(data.ComponentCount(), 1);
    EXPECT_EQ(data.faces.size(), data.edges.size() - data.vertices.size() + 2);
  }
}

}  // namespace
}  // namespace topodb
