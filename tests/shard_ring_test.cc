// ConsistentHashRing: determinism goldens and the rebalancing property.
//
// The goldens pin the FNV-1a hash and the ring's key->shard assignment
// byte-for-byte. They are not arbitrary: every deployed catalog's
// placement is a function of these values, so an "innocent" hash or
// tie-break change shows up here as what it really is — a placement
// change for existing clusters (see src/shard/hash_ring.h).

#include "src/shard/hash_ring.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace topodb {
namespace {

std::vector<std::string> Ids(std::initializer_list<const char*> names) {
  return std::vector<std::string>(names.begin(), names.end());
}

TEST(ShardRingTest, BuildRejectsBadInputs) {
  EXPECT_FALSE(ConsistentHashRing::Build({}, 8).ok());
  EXPECT_FALSE(ConsistentHashRing::Build(Ids({"a", "a"}), 8).ok());
  EXPECT_FALSE(ConsistentHashRing::Build(Ids({"a", "b"}), 0).ok());
  EXPECT_TRUE(ConsistentHashRing::Build(Ids({"a"}), 1).ok());
}

TEST(ShardRingTest, HashGoldenValues) {
  // FNV-1a 64 reference vectors (offset basis for "", standard test
  // values for short strings). Platform-independence of the placement
  // function reduces to these.
  EXPECT_EQ(ConsistentHashRing::Hash(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(ConsistentHashRing::Hash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(ConsistentHashRing::Hash("foobar"), 0x85944171f73967e8ull);
}

TEST(ShardRingTest, AssignmentGolden) {
  Result<ConsistentHashRing> ring =
      ConsistentHashRing::Build(Ids({"alpha", "beta", "gamma"}), 64);
  ASSERT_TRUE(ring.ok());
  // Pinned against the initial implementation; a diff here is a
  // placement format break, not a refactor detail.
  const std::map<std::string, std::string> golden = {
      {"fig1a", "gamma"},      {"fig7b", "gamma"},      {"grid-3x3", "beta"},
      {"instance-0", "gamma"}, {"instance-1", "gamma"}, {"instance-2", "gamma"},
      {"", "beta"},
  };
  for (const auto& [key, want] : golden) {
    EXPECT_EQ(ring->shard_id(ring->ShardForKey(key)), want) << key;
  }
}

TEST(ShardRingTest, AssignmentIsStableAcrossRebuilds) {
  Result<ConsistentHashRing> a =
      ConsistentHashRing::Build(Ids({"s0", "s1", "s2", "s3"}), 32);
  Result<ConsistentHashRing> b =
      ConsistentHashRing::Build(Ids({"s0", "s1", "s2", "s3"}), 32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a->ShardForKey(key), b->ShardForKey(key)) << key;
  }
}

TEST(ShardRingTest, WalkOrderCoversEveryShardOnceStartingAtOwner) {
  Result<ConsistentHashRing> ring =
      ConsistentHashRing::Build(Ids({"a", "b", "c", "d", "e"}), 16);
  ASSERT_TRUE(ring.ok());
  for (int i = 0; i < 200; ++i) {
    const std::string key = "walk-" + std::to_string(i);
    const std::vector<size_t> order = ring->WalkOrder(key);
    ASSERT_EQ(order.size(), 5u) << key;
    EXPECT_EQ(order[0], ring->ShardForKey(key)) << key;
    EXPECT_EQ(std::set<size_t>(order.begin(), order.end()).size(), 5u) << key;
  }
}

// The consistent-hashing contract: removing one of N shards remaps
// exactly the keys that shard owned — every other key keeps its
// assignment — and that set is ~1/N of the keyspace.
TEST(ShardRingTest, RemovingOneShardRemapsOnlyItsKeys) {
  const std::vector<std::string> five = Ids({"s0", "s1", "s2", "s3", "s4"});
  Result<ConsistentHashRing> full = ConsistentHashRing::Build(five, 64);
  ASSERT_TRUE(full.ok());
  std::vector<std::string> four(five.begin(), five.end() - 1);  // Drop s4.
  Result<ConsistentHashRing> reduced = ConsistentHashRing::Build(four, 64);
  ASSERT_TRUE(reduced.ok());

  constexpr int kKeys = 10000;
  int owned_by_removed = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string& before = full->shard_id(full->ShardForKey(key));
    const std::string& after = reduced->shard_id(reduced->ShardForKey(key));
    if (before == "s4") {
      ++owned_by_removed;  // Must move somewhere; anywhere is legal.
    } else {
      // The exact property, not a statistical one: survivors' keys
      // never move.
      ASSERT_EQ(after, before) << key;
    }
  }
  // The removed shard held ~1/5 of the keys (vnode balance is
  // statistical; 64 vnodes keeps it within a loose band).
  EXPECT_GT(owned_by_removed, kKeys / 5 / 2);
  EXPECT_LT(owned_by_removed, kKeys * 2 / 5);
}

}  // namespace
}  // namespace topodb
