// Tests for the planning pass (src/query/plan.h): canonical-form
// equivalence merging, fixpoint/round-trip stability of canonical keys
// (they are the semantic-cache key, so they must be byte-stable),
// randomized Parse-o-ToString fuzz over adversarial ASTs, and the
// planned-vs-unplanned differential contract.

#include "src/query/plan.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/query/eval.h"
#include "src/query/parser.h"
#include "src/region/fixtures.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

std::string KeyOf(const std::string& query) {
  Result<FormulaPtr> parsed = ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << query << ": " << parsed.status().ToString();
  return CanonicalQueryKey(*parsed);
}

TEST(QueryPlanTest, CanonicalKeyMergesEquivalentForms) {
  const std::pair<const char*, const char*> pairs[] = {
      // Symmetric-atom operand order.
      {"connect(A, B)", "connect(B, A)"},
      {"overlap(A, B)", "overlaps(B, A)"},
      // disjoint is not-connect by definition.
      {"disjoint(A, B)", "not connect(A, B)"},
      // Converse predicates.
      {"contains(A, B)", "inside(B, A)"},
      {"covers(A, B)", "coveredBy(B, A)"},
      // implies-elimination.
      {"subset(A, B) implies subset(B, C)",
       "(not subset(A, B)) or subset(B, C)"},
      // Double negation.
      {"not (not subset(A, B))", "subset(A, B)"},
      // Commutativity, associativity, idempotence.
      {"subset(A, B) and subset(B, C)", "subset(B, C) and subset(A, B)"},
      {"(subset(A, B) or meet(A, C)) or inside(B, C)",
       "subset(A, B) or (meet(A, C) or inside(B, C))"},
      {"subset(A, B) and subset(A, B)", "subset(A, B)"},
      // De Morgan / NNF push-down.
      {"not (subset(A, B) and meet(A, C))",
       "(not subset(A, B)) or (not meet(A, C))"},
      // iff is commutative, and negation on either side or on the whole
      // connective folds into one parity.
      {"subset(A, B) iff meet(A, C)", "meet(A, C) iff subset(A, B)"},
      {"not (subset(A, B) iff meet(A, C))",
       "subset(A, B) iff (not meet(A, C))"},
      {"(not subset(A, B)) iff meet(A, C)",
       "subset(A, B) iff (not meet(A, C))"},
      // Alpha-equivalence.
      {"exists region r . subset(r, A)", "exists region s . subset(s, A)"},
      // Same-kind quantifier blocks commute (binders permuted + renamed).
      {"exists region r . exists region s . subset(r, s)",
       "exists region r . exists region s . subset(s, r)"},
      {"exists name a . exists region r . subset(r, a)",
       "exists region r . exists name a . subset(r, a)"},
      {"forall name a . forall name b . connect(a, b)",
       "forall name b . forall name a . connect(b, a)"},
      // Variable-independent conjuncts hoist out of exists...
      {"exists region r . (subset(r, A) and connect(B, C))",
       "connect(B, C) and (exists region r . subset(r, A))"},
      // ...and disjuncts out of forall.
      {"forall region r . (connect(r, r) or subset(A, B))",
       "subset(A, B) or (forall region r . connect(r, r))"},
      // Constant folding and complements.
      {"subset(A, B) and true", "subset(A, B)"},
      {"subset(A, B) or true", "true"},
      {"subset(A, B) and (not subset(A, B))", "false"},
      {"subset(A, B) or (not subset(A, B))", "true"},
      {"subset(A, B) iff subset(A, B)", "true"},
      {"not (subset(A, B) iff subset(A, B))", "false"},
      // NameEq operand order and reflexivity.
      {"exists name a . a = A", "exists name a . A = a"},
      {"exists name a . a = a", "exists name a . true"},
  };
  for (const auto& [left, right] : pairs) {
    EXPECT_EQ(KeyOf(left), KeyOf(right))
        << "expected one canonical form:\n  " << left << "\n  " << right;
  }
}

TEST(QueryPlanTest, CanonicalKeyKeepsInequivalentQueriesApart) {
  const std::pair<const char*, const char*> pairs[] = {
      {"subset(A, B)", "subset(B, A)"},
      {"boundarypart(A, B)", "boundarypart(B, A)"},
      {"inside(A, B)", "inside(B, A)"},
      {"exists region r . subset(r, A)", "forall region r . subset(r, A)"},
      {"exists region r . subset(r, A)", "exists cell r . subset(r, A)"},
      {"subset(A, B) implies subset(B, C)",
       "subset(B, C) implies subset(A, B)"},
      {"subset(A, B) iff meet(A, C)", "not (subset(A, B) iff meet(A, C))"},
      {"connect(A, B)", "connect(A, C)"},
      // Exists/forall alternation cannot be permuted.
      {"exists region r . forall region s . connect(r, s)",
       "forall region s . exists region r . connect(r, s)"},
  };
  for (const auto& [left, right] : pairs) {
    EXPECT_NE(KeyOf(left), KeyOf(right))
        << "distinct queries collapsed:\n  " << left << "\n  " << right;
  }
}

TEST(QueryPlanTest, CanonicalFormIsAFixpointAndReparses) {
  const char* queries[] = {
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)",
      "forall region r . forall region s . (subset(r, A) and subset(s, A)) "
      "implies (exists region t . subset(t, A) and connect(t, r) and "
      "connect(t, s))",
      "exists name a . exists name b . not (a = b) and overlap(a, b)",
      "forall name a . forall name b . (not (a = b)) implies "
      "(connect(a, b) iff connect(b, a))",
      "exists cell c . subset(c, \"main street\") and subset(c, \"1a\")",
      "not (disjoint(A, B) or contains(A, B))",
      "exists region r . true",
      "forall cell c . false",
  };
  for (const char* query : queries) {
    FormulaPtr parsed = *ParseQuery(query);
    const std::string key = CanonicalQueryKey(parsed);
    // Canonicalization is idempotent on its own output...
    EXPECT_EQ(CanonicalizeQuery(CanonicalizeQuery(parsed))->ToString(), key)
        << query;
    // ...and survives a parse round-trip byte-stably (the cache-key
    // contract: a key re-derived from its own rendering is the same key).
    Result<FormulaPtr> reparsed = ParseQuery(key);
    ASSERT_TRUE(reparsed.ok()) << key << ": " << reparsed.status().ToString();
    EXPECT_EQ(CanonicalQueryKey(*reparsed), key) << query;
  }
}

// The PR's round-trip bugfix: a name constant spelled like an in-scope
// bound variable must be quoted by ToString, else it reparses as that
// variable and the round trip changes the query's meaning.
TEST(QueryPlanTest, ShadowedNameConstantsAreQuotedInToString) {
  const FormulaPtr shadowed = MakeQuantifier(
      Formula::Kind::kExists, Formula::VarKind::kRegion, "x",
      MakeAtom(Predicate::kConnect, Var("x"), NameConstant("x")));
  const std::string text = shadowed->ToString();
  EXPECT_NE(text.find("\"x\""), std::string::npos) << text;
  Result<FormulaPtr> reparsed = ParseQuery(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ((*reparsed)->ToString(), text);
  EXPECT_EQ((*reparsed)->body->rhs.kind, Term::Kind::kNameConstant);

  // Outside the binder's scope the same constant stays bare.
  const FormulaPtr unshadowed =
      MakeAtom(Predicate::kConnect, NameConstant("x"), NameConstant("y"));
  EXPECT_EQ(unshadowed->ToString(), "connect(x, y)");

  // The canonical renamer manufactures binders x0, x1, ...; a free
  // constant that happens to be named x0 must survive the renaming.
  const std::string key =
      KeyOf("exists region r . connect(r, x0) and connect(r, x1)");
  Result<FormulaPtr> again = ParseQuery(key);
  ASSERT_TRUE(again.ok()) << key;
  EXPECT_EQ(CanonicalQueryKey(*again), key);
}

// ---------------------------------------------------------------------
// Randomized Parse-o-ToString fuzz. The generator aims at the grammar's
// sharp edges: quoted names ("main street", "1a"), names that collide
// with keywords ("cell", "not"), names that collide with binders in
// scope ("r", "x0"), nested negation, mixed quantifier blocks and
// max-depth formulas.

struct FuzzGen {
  explicit FuzzGen(uint64_t seed) : rng(seed) {}

  Term RandomTerm(const std::vector<std::pair<Formula::VarKind, std::string>>&
                      scope) {
    static const char* const kNames[] = {"A",   "B",    "C",   "main street",
                                         "1a",  "cell", "not", "r",
                                         "x0",  "\\\"q\\\""};
    if (!scope.empty() && rng.Below(2) == 0) {
      return Var(scope[rng.Below(scope.size())].second);
    }
    return NameConstant(kNames[rng.Below(std::size(kNames))]);
  }

  FormulaPtr Random(int depth,
                    std::vector<std::pair<Formula::VarKind, std::string>>*
                        scope) {
    const uint64_t pick = rng.Below(depth <= 0 ? 3 : 10);
    switch (pick) {
      case 0:
        return rng.Below(2) == 0 ? std::make_shared<Formula>() : [] {
          auto f = std::make_shared<Formula>();
          f->kind = Formula::Kind::kFalse;
          return FormulaPtr(f);
        }();
      case 1: {
        static const Predicate kPreds[] = {
            Predicate::kConnect,  Predicate::kDisjoint, Predicate::kIntersects,
            Predicate::kSubset,   Predicate::kBoundaryPart,
            Predicate::kOverlap,  Predicate::kMeet,     Predicate::kEqual,
            Predicate::kInside,   Predicate::kContains, Predicate::kCovers,
            Predicate::kCoveredBy};
        return MakeAtom(kPreds[rng.Below(std::size(kPreds))],
                        RandomTerm(*scope), RandomTerm(*scope));
      }
      case 2:
        return MakeNameEq(RandomTerm(*scope), RandomTerm(*scope));
      case 3:
      case 4:
        return MakeNot(Random(depth - 1, scope));
      case 5:
        return MakeAnd(Random(depth - 1, scope), Random(depth - 1, scope));
      case 6:
        return MakeOr(Random(depth - 1, scope), Random(depth - 1, scope));
      case 7:
        return MakeImplies(Random(depth - 1, scope), Random(depth - 1, scope));
      case 8: {
        auto f = std::make_shared<Formula>();
        f->kind = Formula::Kind::kIff;
        f->left = Random(depth - 1, scope);
        f->right = Random(depth - 1, scope);
        return f;
      }
      default: {
        static const Formula::VarKind kKinds[] = {Formula::VarKind::kRegion,
                                                  Formula::VarKind::kCell,
                                                  Formula::VarKind::kName};
        static const char* const kVars[] = {"r", "s", "t", "c", "a", "x0"};
        const Formula::Kind kind = rng.Below(2) == 0 ? Formula::Kind::kExists
                                                     : Formula::Kind::kForall;
        const Formula::VarKind var_kind = kKinds[rng.Below(std::size(kKinds))];
        const std::string var = kVars[rng.Below(std::size(kVars))];
        scope->emplace_back(var_kind, var);
        FormulaPtr body = Random(depth - 1, scope);
        scope->pop_back();
        return MakeQuantifier(kind, var_kind, var, std::move(body));
      }
    }
  }

  SplitMix64 rng;
};

TEST(QueryPlanTest, RandomizedToStringParseRoundTrip) {
  FuzzGen gen(0x70700db9u);
  for (int i = 0; i < 600; ++i) {
    std::vector<std::pair<Formula::VarKind, std::string>> scope;
    const FormulaPtr f = gen.Random(2 + i % 4, &scope);
    const std::string text = f->ToString();
    Result<FormulaPtr> reparsed = ParseQuery(text);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << i << ": " << text << "\n  "
        << reparsed.status().ToString();
    EXPECT_EQ((*reparsed)->ToString(), text) << "iteration " << i;
  }
}

TEST(QueryPlanTest, RandomizedCanonicalKeyIsStableThroughReparse) {
  FuzzGen gen(0xc0ffee42u);
  for (int i = 0; i < 400; ++i) {
    std::vector<std::pair<Formula::VarKind, std::string>> scope;
    const FormulaPtr f = gen.Random(2 + i % 4, &scope);
    const std::string key = CanonicalQueryKey(f);
    Result<FormulaPtr> reparsed = ParseQuery(key);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << i << ": " << key << "\n  "
        << reparsed.status().ToString();
    EXPECT_EQ(CanonicalQueryKey(*reparsed), key)
        << "iteration " << i << "\n  original: " << f->ToString();
  }
}

// ---------------------------------------------------------------------
// Planned-vs-unplanned differential (the PR 2 precedent): for queries
// whose names resolve, planning must not change any verdict, under
// either strategy and with the parallel fan-out.

void ExpectPlannedMatchesUnplanned(const QueryEngine& engine,
                                   const std::string& query) {
  for (EvalStrategy strategy :
       {EvalStrategy::kBaseline, EvalStrategy::kBitset}) {
    for (int threads : {1, 3}) {
      EvalOptions unplanned;
      unplanned.strategy = strategy;
      unplanned.num_threads = threads;
      EvalOptions planned = unplanned;
      planned.plan = true;
      Result<bool> a = engine.Evaluate(query, unplanned);
      Result<bool> b = engine.Evaluate(query, planned);
      ASSERT_TRUE(a.ok()) << query << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << query << ": " << b.status().ToString();
      EXPECT_EQ(*a, *b) << query << " strategy="
                        << (strategy == EvalStrategy::kBitset ? "bitset"
                                                              : "baseline")
                        << " threads=" << threads;
    }
  }
}

TEST(QueryPlanTest, PlannedMatchesUnplannedOnPaperExamples) {
  // Name-generic queries run on every instance; the A/B/C ones only on
  // the three-region figures.
  const char* generic[] = {
      "exists region r . subset(r, A) and subset(r, B)",
      "forall region r . connect(r, r)",
      "forall name a . forall name b . (not (a = b)) implies "
      "(connect(a, b) iff connect(b, a))",
      "exists region r . forall name a . subset(r, a)",
      "forall name a . exists region r . subset(r, a) and connect(r, a)",
      "exists name a . exists name b . not (a = b) and overlap(a, b)",
      "forall cell c . (subset(c, A) or not subset(c, A))",
  };
  const char* three_region[] = {
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)",
      "exists cell c . subset(c, A) and subset(c, B) and subset(c, C)",
      "exists region r . (disjoint(r, A) implies subset(r, B)) "
      "and connect(r, C)",
  };
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1dInstance()}) {
    QueryEngine engine = *QueryEngine::Build(instance);
    for (const char* query : generic) {
      ExpectPlannedMatchesUnplanned(engine, query);
    }
  }
  for (const SpatialInstance& instance : {Fig1aInstance(), Fig1bInstance()}) {
    QueryEngine engine = *QueryEngine::Build(instance);
    for (const char* query : three_region) {
      ExpectPlannedMatchesUnplanned(engine, query);
    }
  }
}

TEST(QueryPlanTest, RandomizedPlannedDifferential) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  FuzzGen gen(0x5eed5eedu);
  int evaluated = 0;
  for (int i = 0; evaluated < 60 && i < 400; ++i) {
    std::vector<std::pair<Formula::VarKind, std::string>> scope;
    const FormulaPtr f = gen.Random(3, &scope);
    // Only valid-name queries are in the differential contract; the
    // generator's name pool is mostly junk, so route through validation
    // by asking the unplanned evaluator first.
    EvalOptions unplanned;
    unplanned.strategy = EvalStrategy::kBitset;
    Result<bool> a = engine.Evaluate(f, unplanned);
    if (!a.ok()) continue;
    // Names may still be invalid if short-circuiting skipped them;
    // planned evaluation validates all, so skip those queries.
    Status names = Status::OK();
    EvalOptions planned = unplanned;
    planned.plan = true;
    Result<bool> b = engine.Evaluate(f, planned);
    if (!b.ok() && b.status().code() == StatusCode::kNotFound) continue;
    ASSERT_TRUE(b.ok()) << f->ToString() << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << f->ToString();
    (void)names;
    ++evaluated;
  }
  EXPECT_GE(evaluated, 40);
}

// Short-circuit reordering must not let an unknown name slip through or
// fabricate one: the planned path validates atom names up front, so a
// query mentioning a ghost region fails NotFound regardless of where
// short-circuiting would have stopped the unplanned evaluator.
TEST(QueryPlanTest, PlannedEvaluationValidatesAtomNamesUpFront) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  EvalOptions planned;
  planned.plan = true;
  // Unplanned short-circuits to false without touching Ghost; planned
  // fails fast — the documented (and pinned) divergence.
  Result<bool> unplanned_result =
      engine.Evaluate("false and connect(Ghost, A)", EvalOptions{});
  ASSERT_TRUE(unplanned_result.ok());
  EXPECT_FALSE(*unplanned_result);
  Result<bool> planned_result =
      engine.Evaluate("false and connect(Ghost, A)", planned);
  EXPECT_EQ(planned_result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(planned_result.status().ToString(),
            engine.Evaluate("connect(Ghost, A)", EvalOptions{})
                .status()
                .ToString());
  // Unknown names in NameEq positions stay legal on both paths.
  Result<bool> nameeq =
      engine.Evaluate("exists name a . a = Ghost", planned);
  ASSERT_TRUE(nameeq.ok()) << nameeq.status().ToString();
  EXPECT_FALSE(*nameeq);
}

TEST(QueryPlanTest, PlanIsDeterministicAndOrdersByCost) {
  SelectivityStats stats;
  stats.num_names = 3;
  stats.num_cells = 25;
  stats.num_faces = 8;
  const FormulaPtr q = *ParseQuery(
      "exists region r . exists name a . subset(r, a) and "
      "(exists region s . subset(s, r))");
  const FormulaPtr p1 = PlanQuery(q, stats);
  const FormulaPtr p2 = PlanQuery(q, stats);
  EXPECT_EQ(p1->ToString(), p2->ToString());
  // In an unbroken block, the cheap name quantifier becomes the outer
  // loop.
  const FormulaPtr block =
      PlanQuery(*ParseQuery("exists region r . exists name a . subset(r, a)"),
                stats);
  ASSERT_EQ(block->kind, Formula::Kind::kExists);
  EXPECT_EQ(block->var_kind, Formula::VarKind::kName);
  // With inverted cardinalities the reorder flips: fewer cells than
  // names puts the cell quantifier outermost.
  SelectivityStats inverted;
  inverted.num_names = 100;
  inverted.num_cells = 10;
  inverted.num_faces = 8;
  const FormulaPtr flipped = PlanQuery(
      *ParseQuery("exists name a . exists cell c . subset(c, a)"), inverted);
  ASSERT_EQ(flipped->kind, Formula::Kind::kExists);
  EXPECT_EQ(flipped->var_kind, Formula::VarKind::kCell);
  // Cost model sanity: region ranges dominate name ranges.
  EXPECT_GT(EstimateQueryCost(*ParseQuery("exists region r . connect(r, r)"),
                              stats),
            EstimateQueryCost(*ParseQuery("exists name a . connect(a, a)"),
                              stats));
  // A cheap atom sorts ahead of an expensive quantified conjunct.
  const FormulaPtr conj = PlanQuery(
      *ParseQuery("(exists region s . subset(s, A)) and connect(A, B)"),
      stats);
  ASSERT_EQ(conj->kind, Formula::Kind::kAnd);
  EXPECT_EQ(conj->left->kind, Formula::Kind::kAtom);
}

}  // namespace
}  // namespace topodb
