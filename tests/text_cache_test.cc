// TextInvariantCache: admission-cap semantics and metrics accounting.

#include "src/pipeline/text_cache.h"

#include <string>

#include "gtest/gtest.h"

namespace topodb {
namespace {

TEST(TextCacheTest, LookupAfterInsertHits) {
  TextInvariantCache cache(TextCacheOptions{});
  EXPECT_FALSE(cache.Lookup("poly A").has_value());
  cache.Insert("poly A", "canonical-A");
  ASSERT_TRUE(cache.Lookup("poly A").has_value());
  EXPECT_EQ(*cache.Lookup("poly A"), "canonical-A");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), std::string("poly A").size() +
                               std::string("canonical-A").size());
}

TEST(TextCacheTest, FirstInsertWins) {
  TextInvariantCache cache(TextCacheOptions{});
  cache.Insert("k", "first");
  cache.Insert("k", "second");
  EXPECT_EQ(*cache.Lookup("k"), "first");
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(TextCacheTest, EntryCapRejectsNotEvicts) {
  TextCacheOptions options;
  options.max_entries = 2;
  TextInvariantCache cache(options);
  cache.Insert("a", "1");
  cache.Insert("b", "2");
  cache.Insert("c", "3");  // Over the cap: rejected, residents untouched.
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
  EXPECT_FALSE(cache.Lookup("c").has_value());
}

TEST(TextCacheTest, ByteCapRejects) {
  TextCacheOptions options;
  options.max_bytes = 10;
  TextInvariantCache cache(options);
  cache.Insert("aaaa", "bbbb");                  // 8 bytes: fits.
  cache.Insert("cc", "dd");                      // Would be 12: rejected.
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_FALSE(cache.Lookup("cc").has_value());
}

TEST(TextCacheTest, ZeroEntriesDisables) {
  TextCacheOptions options;
  options.max_entries = 0;
  TextInvariantCache cache(options);
  cache.Insert("a", "1");
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(TextCacheTest, MetricsCountHitsMissesAndRejections) {
  MetricsRegistry registry;
  TextCacheOptions options;
  options.max_entries = 1;
  options.metrics = &registry;
  TextInvariantCache cache(options);
  cache.Lookup("a");              // miss
  cache.Insert("a", "1");         // insertion
  cache.Lookup("a");              // hit
  cache.Insert("b", "2");         // rejected (cap)
  cache.Lookup("b");              // miss
  EXPECT_EQ(registry.counter("textcache.hits")->value(), 1u);
  EXPECT_EQ(registry.counter("textcache.misses")->value(), 2u);
  EXPECT_EQ(registry.counter("textcache.insertions")->value(), 1u);
  EXPECT_EQ(registry.counter("textcache.rejected")->value(), 1u);
  EXPECT_EQ(registry.gauge("textcache.entries")->value(), 1);
}

// The policy rationale, as an executable statement: under a cyclic sweep
// of a working set larger than capacity, first-in-wins admission keeps a
// stable resident subset (hits ~ capacity/working-set per pass). An LRU
// would score zero on exactly this access pattern.
TEST(TextCacheTest, CyclicSweepKeepsStableResidents) {
  MetricsRegistry registry;
  TextCacheOptions options;
  options.max_entries = 4;
  options.metrics = &registry;
  TextInvariantCache cache(options);
  const int working_set = 12;
  auto sweep = [&] {
    for (int i = 0; i < working_set; ++i) {
      const std::string key = "inst-" + std::to_string(i);
      if (!cache.Lookup(key).has_value()) cache.Insert(key, "canon");
    }
  };
  sweep();  // Fill pass: admits the first 4, rejects the rest.
  const uint64_t misses_after_fill =
      registry.counter("textcache.misses")->value();
  sweep();
  sweep();
  // Every later pass hits the 4 residents and misses the other 8.
  EXPECT_EQ(registry.counter("textcache.misses")->value(),
            misses_after_fill + 2 * (working_set - 4));
  EXPECT_EQ(registry.counter("textcache.hits")->value(), 2u * 4u);
}

}  // namespace
}  // namespace topodb
