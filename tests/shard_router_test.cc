// End-to-end tests for the shard router (src/shard/router.h): key
// routing with byte-identical responses, scatter-gather batching,
// catalog placement through LOAD/LIST/DESCRIBE, failover when a shard
// dies or drains, merged metrics, and deadline forwarding — all against
// live loopback topodb_server backends. Runs under TSan alongside
// server_test (ci/run_ci.sh).

#include "src/shard/router.h"

#include <stdlib.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/client/client.h"
#include "src/region/fixtures.h"
#include "src/region/io.h"
#include "src/server/server.h"
#include "src/shard/metrics_merge.h"
#include "src/store/catalog.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

constexpr char kPathologicalQuery[] =
    "forall region r . exists region s . not connect(r, s)";

std::string GridText() {
  auto grid = RectGridInstance(3, 3);
  EXPECT_TRUE(grid.ok());
  return WriteInstanceText(*grid);
}

// A two-shard fleet plus a router in front, each backend with its own
// registry so tests can see which shard served what.
struct Cluster {
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  std::vector<std::unique_ptr<TopoDbServer>> servers;
  std::unique_ptr<TopoDbRouter> router;

  static Cluster Start(size_t num_shards, bool health_checker = false) {
    Cluster cluster;
    RouterOptions router_options;
    for (size_t s = 0; s < num_shards; ++s) {
      cluster.registries.push_back(std::make_unique<MetricsRegistry>());
      ServerOptions options;
      options.metrics = cluster.registries.back().get();
      cluster.servers.push_back(std::make_unique<TopoDbServer>(options));
      EXPECT_TRUE(cluster.servers.back()->Start().ok());
      router_options.shards.push_back(
          {"s" + std::to_string(s), cluster.servers.back()->port()});
    }
    router_options.health_checker = health_checker;
    cluster.router = std::make_unique<TopoDbRouter>(router_options);
    EXPECT_TRUE(cluster.router->Start().ok());
    return cluster;
  }

  TopoDbClient Connect() {
    auto client = TopoDbClient::Connect(router->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return *std::move(client);
  }

  uint64_t ServedRequests(size_t shard) {
    return registries[shard]->counter("server.requests")->value();
  }
};

// An inline text whose ring owner is `shard`: fixture texts are all
// distinct, so probing a handful always finds one per shard.
std::string TextOwnedBy(const TopoDbRouter& router_const, size_t shard) {
  TopoDbRouter& router = const_cast<TopoDbRouter&>(router_const);
  const std::vector<SpatialInstance> candidates = {
      Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
      NestedInstance(), DisjointPairInstance(), SingleRegionInstance()};
  for (const SpatialInstance& instance : candidates) {
    const std::string text = WriteInstanceText(instance);
    if (router.topology().Owner(text) == shard) return text;
  }
  ADD_FAILURE() << "no fixture text owned by shard " << shard;
  return {};
}

TEST(RouterTest, PingAndSingleOpcodesAreByteIdenticalToDirect) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();
  EXPECT_TRUE(via_router.Ping().ok());

  const std::string text = WriteInstanceText(Fig1aInstance());
  const size_t owner = cluster.router->topology().Owner(text);
  const uint64_t before_owner = cluster.ServedRequests(owner);
  const uint64_t before_other = cluster.ServedRequests(1 - owner);

  const auto routed = via_router.ComputeInvariant(text);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  // Byte-identical to a direct exchange with the owner backend…
  auto direct_client = TopoDbClient::Connect(cluster.servers[owner]->port());
  ASSERT_TRUE(direct_client.ok());
  const auto direct = direct_client->ComputeInvariant(text);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*routed, *direct);

  // …and served by the owner, not sprayed across the fleet.
  EXPECT_GT(cluster.ServedRequests(owner), before_owner);
  EXPECT_EQ(cluster.ServedRequests(1 - owner), before_other);

  // EVAL_QUERY routes by the same key and agrees with the direct path.
  const auto routed_eval =
      via_router.EvalQuery(text, "forall region r . connect(r, r)");
  const auto direct_eval =
      direct_client->EvalQuery(text, "forall region r . connect(r, r)");
  ASSERT_TRUE(routed_eval.ok() && direct_eval.ok());
  EXPECT_EQ(*routed_eval, *direct_eval);
}

TEST(RouterTest, BatchScatterGathersAcrossShardsAndStaysAligned) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();

  // Items that land on both shards, plus a malformed one in the middle.
  const std::vector<std::string> texts = {
      TextOwnedBy(*cluster.router, 0),
      "region garbage { this is not the text format }",
      TextOwnedBy(*cluster.router, 1),
      WriteInstanceText(NestedInstance()),
  };
  const auto via = via_router.BatchInvariants(texts);
  ASSERT_TRUE(via.ok()) << via.status().ToString();
  ASSERT_EQ(via->size(), texts.size());

  // Both backends saw work: this batch genuinely scattered.
  EXPECT_GT(cluster.ServedRequests(0), 0u);
  EXPECT_GT(cluster.ServedRequests(1), 0u);

  // Per-item results identical to one direct single-server run.
  ServerOptions direct_options;
  TopoDbServer direct_server(direct_options);
  ASSERT_TRUE(direct_server.Start().ok());
  auto direct_client = TopoDbClient::Connect(direct_server.port());
  ASSERT_TRUE(direct_client.ok());
  const auto direct = direct_client->BatchInvariants(texts);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->size(), via->size());
  for (size_t i = 0; i < via->size(); ++i) {
    ASSERT_EQ((*via)[i].ok(), (*direct)[i].ok()) << i;
    if ((*via)[i].ok()) {
      EXPECT_EQ((*via)[i].value(), (*direct)[i].value()) << i;
    } else {
      EXPECT_EQ((*via)[i].status().code(), (*direct)[i].status().code()) << i;
    }
  }
}

TEST(RouterTest, IsoCheckDecomposesAcrossShards) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();

  // Keys on different shards force the cross-shard decomposition.
  const std::string text_a = TextOwnedBy(*cluster.router, 0);
  const std::string text_b = TextOwnedBy(*cluster.router, 1);
  ASSERT_NE(cluster.router->topology().Owner(text_a),
            cluster.router->topology().Owner(text_b));

  TopoDbServer direct_server{ServerOptions{}};
  ASSERT_TRUE(direct_server.Start().ok());
  auto direct_client = TopoDbClient::Connect(direct_server.port());
  ASSERT_TRUE(direct_client.ok());

  const auto via = via_router.IsoCheck(text_a, text_b);
  const auto direct = direct_client->IsoCheck(text_a, text_b);
  ASSERT_TRUE(via.ok()) << via.status().ToString();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*via, *direct);

  // The same instance spelled twice is iso to itself across shards too.
  const auto self = via_router.IsoCheck(text_a, text_a);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(*self);
}

std::string TempCatalogDir() {
  std::string tmpl = testing::TempDir() + "topodb_router_cat_XXXXXX";
  EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

TEST(RouterTest, LoadPlacesByNameAndListMergesTheFleet) {
  // Two catalog-backed shards.
  std::vector<std::unique_ptr<Catalog>> catalogs;
  Cluster cluster;
  RouterOptions router_options;
  for (size_t s = 0; s < 2; ++s) {
    cluster.registries.push_back(std::make_unique<MetricsRegistry>());
    CatalogOptions catalog_options;
    catalog_options.directory = TempCatalogDir();
    auto catalog = Catalog::Open(catalog_options);
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    catalogs.push_back(*std::move(catalog));
    ServerOptions options;
    options.metrics = cluster.registries.back().get();
    options.catalog = catalogs.back().get();
    cluster.servers.push_back(std::make_unique<TopoDbServer>(options));
    ASSERT_TRUE(cluster.servers.back()->Start().ok());
    router_options.shards.push_back(
        {"s" + std::to_string(s), cluster.servers.back()->port()});
  }
  router_options.health_checker = false;
  cluster.router = std::make_unique<TopoDbRouter>(router_options);
  ASSERT_TRUE(cluster.router->Start().ok());
  TopoDbClient via_router = cluster.Connect();

  // LOAD through the router: the ring decides placement per name.
  const std::map<std::string, std::string> entries = {
      {"fig1a", WriteInstanceText(Fig1aInstance())},
      {"nested", WriteInstanceText(NestedInstance())},
      {"disjoint", WriteInstanceText(DisjointPairInstance())},
      {"grid", GridText()},
  };
  for (const auto& [name, text] : entries) {
    const auto loaded = via_router.Load(name, text);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
    // The entry landed exactly on the ring owner.
    const size_t owner = cluster.router->topology().Owner(name);
    auto direct = TopoDbClient::Connect(cluster.servers[owner]->port());
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(direct->Describe(name).ok()) << name;
  }

  // LIST through the router is the sorted union of both shards.
  const auto listing = via_router.List();
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  ASSERT_EQ(listing->size(), entries.size());
  size_t i = 0;
  for (const auto& [name, text] : entries) {  // std::map: sorted.
    EXPECT_EQ((*listing)[i++].name, name);
  }

  // Name-keyed reads route to the placement shard and round-trip.
  for (const auto& [name, text] : entries) {
    const auto by_name = via_router.ComputeInvariant(InstanceRef::Name(name));
    const auto by_text = via_router.ComputeInvariant(text);
    ASSERT_TRUE(by_name.ok()) << name << ": " << by_name.status().ToString();
    ASSERT_TRUE(by_text.ok());
    EXPECT_EQ(*by_name, *by_text) << name;
  }
  const auto described = via_router.Describe("nested");
  ASSERT_TRUE(described.ok()) << described.status().ToString();
  EXPECT_EQ(described->name, "nested");
  EXPECT_FALSE(via_router.Describe("no-such-entry").ok());
}

TEST(RouterTest, DeadShardReroutesInlineWorkAndFailsNamesCleanly) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();

  // Work owned by shard 1, then kill shard 1 hard.
  const std::string text = TextOwnedBy(*cluster.router, 1);
  ASSERT_TRUE(cluster.servers[1]->Shutdown().ok());

  // Inline text is relocatable: the ring walk lands it on shard 0, with
  // the reroute counted.
  const auto rerouted = via_router.ComputeInvariant(text);
  ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
  EXPECT_GE(cluster.router->metrics().counter("router.rerouted")->value(), 1u);
  EXPECT_EQ(cluster.router->topology().state(1), ShardState::kUnhealthy);
  EXPECT_GE(
      cluster.router->metrics().counter("router.health_transitions")->value(),
      1u);

  // A batch that would have scattered now resolves entirely on shard 0.
  const auto batch = via_router.BatchInvariants(std::vector<std::string>{
      TextOwnedBy(*cluster.router, 0), text});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (const auto& item : *batch) {
    EXPECT_TRUE(item.ok()) << item.status().ToString();
  }

  // Name keys are not relocatable — their data lived on shard 1.
  const auto by_name =
      via_router.ComputeInvariant(InstanceRef::Name("anything"));
  if (cluster.router->topology().Owner("anything") == 1) {
    EXPECT_EQ(by_name.status().code(), StatusCode::kUnavailable);
  } else {
    EXPECT_EQ(by_name.status().code(), StatusCode::kNotFound);
  }

  // LIST still answers from the shards that remain.
  EXPECT_TRUE(via_router.List().ok());
}

TEST(RouterTest, DrainingShardIsRoutedAround) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();

  const std::string text = TextOwnedBy(*cluster.router, 0);
  // Force the state the HealthChecker would set after a draining PING.
  cluster.router->topology().SetState(0, ShardState::kDraining);

  const uint64_t before = cluster.ServedRequests(1);
  const auto computed = via_router.ComputeInvariant(text);
  ASSERT_TRUE(computed.ok()) << computed.status().ToString();
  EXPECT_GT(cluster.ServedRequests(1), before);

  // Healing restores owner routing.
  cluster.router->topology().SetState(0, ShardState::kHealthy);
  const uint64_t healed_before = cluster.ServedRequests(0);
  ASSERT_TRUE(via_router.ComputeInvariant(text).ok());
  EXPECT_GT(cluster.ServedRequests(0), healed_before);
}

TEST(RouterTest, HealthCheckerObservesRealStates) {
  Cluster cluster = Cluster::Start(2, /*health_checker=*/true);
  // Startup probe saw two live servers.
  EXPECT_EQ(cluster.router->topology().state(0), ShardState::kHealthy);
  EXPECT_EQ(cluster.router->topology().state(1), ShardState::kHealthy);

  ASSERT_TRUE(cluster.servers[0]->Shutdown().ok());
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->topology().state(0), ShardState::kUnhealthy);
  EXPECT_EQ(cluster.router->topology().state(1), ShardState::kHealthy);
}

TEST(RouterTest, MetricsMergeFleetViewWithPerShardLabels) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();
  ASSERT_TRUE(via_router.ComputeInvariant(WriteInstanceText(Fig1aInstance()))
                  .ok());

  const auto merged = via_router.Metrics();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // Router-own metrics under their names, backend metrics per shard.
  EXPECT_NE(merged->find("\"router.requests\""), std::string::npos);
  EXPECT_NE(merged->find("\"shard.s0.server.requests\""), std::string::npos);
  EXPECT_NE(merged->find("\"shard.s1.server.requests\""), std::string::npos);
  // The merged document stays a valid topodb.metrics.v2 export.
  const auto parsed = ParseMetricsJson(*merged);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(RouterTest, DeadlineBudgetTravelsToTheBackend) {
  Cluster cluster = Cluster::Start(2);
  TopoDbClient via_router = cluster.Connect();
  const std::string grid = GridText();
  // A 1ms budget must die inside the backend evaluation, proving the
  // budget was materialized into the forwarded frame rather than dropped
  // at the router hop.
  const auto verdict = via_router.EvalQuery(grid, kPathologicalQuery, 1);
  EXPECT_EQ(verdict.status().code(), StatusCode::kDeadlineExceeded)
      << verdict.status().ToString();
}

TEST(RouterTest, RouterDrainAnswersUnavailable) {
  Cluster cluster = Cluster::Start(1);
  TopoDbClient via_router = cluster.Connect();
  ASSERT_TRUE(via_router.Ping().ok());
  ASSERT_TRUE(cluster.router->Shutdown().ok());
  const Status after = via_router.Ping();
  EXPECT_FALSE(after.ok());  // Connection closed by the drained router.
}

// --- metrics_merge unit coverage ----------------------------------------

TEST(MetricsMergeTest, ParsesAnExportRoundTrip) {
  MetricsRegistry registry;
  registry.counter("a.count")->Add(3);
  registry.gauge("b.items")->Set(-7);
  registry.histogram("c.lat_us")->Record(12.5);
  const std::string json = registry.ExportJson();
  const auto parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].first, "a.count");
  EXPECT_EQ(parsed->counters[0].second, "3");
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_EQ(parsed->gauges[0].second, "-7");
  ASSERT_EQ(parsed->histograms.size(), 1u);
  EXPECT_NE(parsed->histograms[0].second.find("\"count\": 1"),
            std::string::npos);

  // Merging with no shards reproduces the document byte-for-byte.
  EXPECT_EQ(MergeMetricsJson(*parsed, {}), json);
}

TEST(MetricsMergeTest, ParsesEmptySections) {
  MetricsRegistry registry;
  const auto parsed = ParseMetricsJson(registry.ExportJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->gauges.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(MetricsMergeTest, MergePrefixesAndSortsShardEntries) {
  MetricsRegistry own;
  own.counter("router.requests")->Add(2);
  MetricsRegistry shard;
  shard.counter("server.requests")->Add(5);
  const auto own_parsed = ParseMetricsJson(own.ExportJson());
  const auto shard_parsed = ParseMetricsJson(shard.ExportJson());
  ASSERT_TRUE(own_parsed.ok() && shard_parsed.ok());
  const std::string merged =
      MergeMetricsJson(*own_parsed, {{"s0", *shard_parsed}});
  EXPECT_NE(merged.find("\"router.requests\": 2"), std::string::npos);
  EXPECT_NE(merged.find("\"shard.s0.server.requests\": 5"),
            std::string::npos);
  // Still parseable — the fleet view is the same schema.
  const auto reparsed = ParseMetricsJson(merged);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->counters.size(), 2u);
  // Sorted: "router.requests" < "shard.s0.server.requests".
  EXPECT_EQ(reparsed->counters[0].first, "router.requests");
  EXPECT_EQ(reparsed->counters[1].first, "shard.s0.server.requests");
}

TEST(MetricsMergeTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseMetricsJson("").ok());
  EXPECT_FALSE(ParseMetricsJson("{}").ok());
  EXPECT_FALSE(ParseMetricsJson("{\n  \"schema\": \"other.v9\",\n}").ok());
}

}  // namespace
}  // namespace topodb
