// Thread-interaction coverage, built for TSan: shared caches, shared
// metric registries, parallel quantifier fan-out, and mid-flight
// cancellation. CI runs exactly this suite under -fsanitize=thread
// (filtered via `ctest -R ConcurrencyTest`), so every cross-thread
// access pattern the serving path supports should be exercised here.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/deadline.h"
#include "src/obs/metrics.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/invariant_cache.h"
#include "src/pipeline/query_batch.h"
#include "src/query/eval.h"
#include "src/region/fixtures.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

std::vector<SpatialInstance> SmallWorkload() {
  std::vector<SpatialInstance> instances = {
      Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance()};
  // Duplicates make the shared invariant cache see hits from several
  // threads at once, not just insertions.
  instances.push_back(Fig1aInstance());
  instances.push_back(Fig1cInstance());
  instances.push_back(*ChainInstance(3));
  instances.push_back(*ChainInstance(3));
  return instances;
}

TEST(ConcurrencyTest, SharedCacheAndRegistryAcrossInvariantBatch) {
  const std::vector<SpatialInstance> instances = SmallWorkload();
  InvariantCache cache;
  MetricsRegistry registry;
  BatchOptions options;
  options.num_threads = 4;
  options.cache = &cache;
  options.metrics = &registry;
  auto results = BatchComputeInvariants(instances, options);
  ASSERT_EQ(results.size(), instances.size());
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  const InvariantCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, instances.size());
  EXPECT_EQ(registry.counter("pipeline.items")->value(), instances.size());
  EXPECT_EQ(registry.counter("pipeline.failures")->value(), 0u);
}

TEST(ConcurrencyTest, SharedEngineAndRegistryAcrossQueryBatch) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  std::vector<std::string> queries = {
      "connect(A, B)",
      "exists name a . exists name b . not (a = b) and overlap(a, b)",
      "forall region r . connect(r, r)",
      "exists region r . subset(r, A) and subset(r, B)",
  };
  // Duplicates drive the shared disc-check memo from several threads.
  queries.push_back(queries[2]);
  queries.push_back(queries[3]);

  MetricsRegistry registry;
  QueryBatchOptions options;
  options.num_threads = 4;
  options.metrics = &registry;
  const std::vector<Result<bool>> results =
      BatchEvaluateQueries(engine, queries, options);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Result<bool> serial = engine.Evaluate(queries[i]);
    ASSERT_TRUE(results[i].ok()) << queries[i];
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(*results[i], *serial) << queries[i];
  }
  EXPECT_EQ(registry.counter("query_batch.items")->value(), queries.size());
  EXPECT_EQ(registry.counter("query.evaluations")->value(), queries.size());
}

TEST(ConcurrencyTest, ParallelOuterQuantifierWithSharedMetrics) {
  QueryEngine engine = *QueryEngine::Build(Fig1cInstance());
  const std::string query = "forall region r . connect(r, r)";
  MetricsRegistry registry;
  EvalOptions parallel;
  parallel.num_threads = 4;
  parallel.metrics = &registry;
  const Result<bool> fanned = engine.Evaluate(query, parallel);
  const Result<bool> serial = engine.Evaluate(query);
  ASSERT_TRUE(fanned.ok()) << fanned.status().ToString();
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(*fanned, *serial);
  EXPECT_GT(registry.counter("query.bindings")->value(), 0u);
}

TEST(ConcurrencyTest, ConcurrentEvaluationsOnOneEngineShareCaches) {
  QueryEngine engine = *QueryEngine::Build(Fig1bInstance());
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Result<bool>> verdicts(4, Result<bool>(false));
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&engine, &registry, &verdicts, t] {
      EvalOptions options;
      options.metrics = &registry;
      verdicts[t] =
          engine.Evaluate("exists region r . subset(r, A)", options);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Result<bool>& verdict : verdicts) {
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_TRUE(*verdict);
  }
  EXPECT_EQ(registry.counter("query.evaluations")->value(), 4u);
}

TEST(ConcurrencyTest, CancellationFlippedMidFlightIsObservedSafely) {
  // A worker thread flips the token while the batch runs. There is no
  // guarantee which items are past their checkpoints when the flip lands,
  // so each result must be either a real verdict or DeadlineExceeded —
  // never a crash, a hang, or a mixed-up slot.
  std::vector<SpatialInstance> instances;
  for (int seed = 1; seed <= 8; ++seed) {
    instances.push_back(*RandomRectInstance(5, 40, seed));
  }
  CancelToken token;
  BatchOptions options;
  options.num_threads = 4;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  auto results = BatchComputeInvariants(instances, options);
  canceller.join();
  ASSERT_EQ(results.size(), instances.size());
  for (const auto& result : results) {
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << result.status().ToString();
    }
  }
}

TEST(ConcurrencyTest, QueryBatchCancellationMidFlightIsObservedSafely) {
  QueryEngine engine = *QueryEngine::Build(Fig1dInstance());
  const std::vector<std::string> queries(
      8, "forall region r . exists region s . connect(r, s)");
  CancelToken token;
  QueryBatchOptions options;
  options.num_threads = 4;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    token.Cancel();
  });
  const std::vector<Result<bool>> results =
      BatchEvaluateQueries(engine, queries, options);
  canceller.join();
  ASSERT_EQ(results.size(), queries.size());
  for (const Result<bool>& result : results) {
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << result.status().ToString();
    }
  }
}

}  // namespace
}  // namespace topodb
