#include "src/query/definability.h"

#include <gtest/gtest.h>

#include "src/query/eval.h"
#include "src/region/fixtures.h"
#include "src/region/transform.h"

namespace topodb {
namespace {

InvariantData Inv(const SpatialInstance& instance) {
  Result<InvariantData> data = ComputeInvariant(instance);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

// Evaluates sigma_I on instance J.
bool Satisfies(const SpatialInstance& j, const FormulaPtr& sigma) {
  Result<QueryEngine> engine = QueryEngine::Build(j);
  EXPECT_TRUE(engine.ok());
  Result<bool> result = engine->Evaluate(sigma);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() && *result;
}

TEST(DefinabilityTest, InstanceSatisfiesItsOwnSentence) {
  // Theorem 5.6: I |= f(I).
  for (const SpatialInstance& instance :
       {Fig1cInstance(), Fig1dInstance(), SingleRegionInstance(),
        NestedInstance(), DisjointPairInstance()}) {
    Result<FormulaPtr> sigma = DefiningSentence(Inv(instance));
    ASSERT_TRUE(sigma.ok());
    EXPECT_TRUE(Satisfies(instance, *sigma));
  }
}

TEST(DefinabilityTest, TransformedCopiesSatisfy) {
  // Homeomorphic copies satisfy sigma_I (Prop 5.1: sigma_I defines the
  // equivalence class).
  SpatialInstance base = Fig1cInstance();
  FormulaPtr sigma = *DefiningSentence(Inv(base));
  AffineTransform map = *AffineTransform::Make(2, 1, -3, 0, 1, 5);
  EXPECT_TRUE(Satisfies(*map.ApplyToInstance(base), sigma));
  EXPECT_TRUE(
      Satisfies(*AffineTransform::MirrorX().ApplyToInstance(base), sigma));
}

TEST(DefinabilityTest, SeparatesFig1cFromFig1d) {
  FormulaPtr sigma_c = *DefiningSentence(Inv(Fig1cInstance()));
  FormulaPtr sigma_d = *DefiningSentence(Inv(Fig1dInstance()));
  EXPECT_TRUE(Satisfies(Fig1cInstance(), sigma_c));
  EXPECT_FALSE(Satisfies(Fig1dInstance(), sigma_c));
  EXPECT_TRUE(Satisfies(Fig1dInstance(), sigma_d));
  EXPECT_FALSE(Satisfies(Fig1cInstance(), sigma_d));
}

TEST(DefinabilityTest, SeparatesNestingFromDisjointness) {
  FormulaPtr sigma_nested = *DefiningSentence(Inv(NestedInstance()));
  EXPECT_TRUE(Satisfies(NestedInstance(), sigma_nested));
  EXPECT_FALSE(Satisfies(DisjointPairInstance(), sigma_nested));
}

TEST(DefinabilityTest, SeparatesDifferentNames) {
  SpatialInstance a;
  ASSERT_TRUE(a.AddRegion("A", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  SpatialInstance z;
  ASSERT_TRUE(z.AddRegion("Z", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  FormulaPtr sigma_a = *DefiningSentence(Inv(a));
  EXPECT_TRUE(Satisfies(a, sigma_a));
  // The name check fails before any region lookup can error.
  EXPECT_FALSE(Satisfies(z, sigma_a));
}

TEST(DefinabilityTest, SeparatesCellCounts) {
  // Fig 1a vs Fig 1b differ in cell counts; sigma separates them.
  FormulaPtr sigma_a = *DefiningSentence(Inv(Fig1aInstance()));
  EXPECT_TRUE(Satisfies(Fig1aInstance(), sigma_a));
  EXPECT_FALSE(Satisfies(Fig1bInstance(), sigma_a));
}

TEST(DefinabilityTest, EmptyInstanceSentence) {
  FormulaPtr sigma = *DefiningSentence(Inv(SpatialInstance()));
  EXPECT_TRUE(Satisfies(SpatialInstance(), sigma));
  EXPECT_FALSE(Satisfies(SingleRegionInstance(), sigma));
}

TEST(DefinabilityTest, SentenceIsPolynomiallySized) {
  // Theorem 5.6: f(I) computable in polynomial time; the sentence grows
  // polynomially with the invariant.
  InvariantData small = Inv(Fig1cInstance());
  InvariantData larger = Inv(Fig1dInstance());
  FormulaPtr sigma_small = *DefiningSentence(small);
  FormulaPtr sigma_larger = *DefiningSentence(larger);
  const size_t len_small = sigma_small->ToString().size();
  const size_t len_larger = sigma_larger->ToString().size();
  EXPECT_GT(len_larger, len_small);
  EXPECT_LT(len_larger, 200000u);
}

TEST(BoundaryPartTest, PredicateSemantics) {
  Result<QueryEngine> engine = QueryEngine::Build(Fig1cInstance());
  ASSERT_TRUE(engine.ok());
  // Some cell lies on A's boundary; no cell is boundarypart of A and
  // subset of A at once.
  EXPECT_TRUE(*engine->Evaluate("exists cell c . boundarypart(c, A)"));
  EXPECT_FALSE(*engine->Evaluate(
      "exists cell c . boundarypart(c, A) and subset(c, A)"));
  // A itself is not part of its own boundary.
  EXPECT_FALSE(*engine->Evaluate("boundarypart(A, A)"));
  // Parser accepts the predicate name.
  Result<FormulaPtr> parsed = ParseQuery("boundarypart(A, B)");
  EXPECT_TRUE(parsed.ok());
}

}  // namespace
}  // namespace topodb
