// Tests for the semantic verdict cache (src/pipeline/semantic_cache.h):
// LRU bounds, key structure (entry identity, options fingerprint,
// canonical query), the cache-hit contract (no budget consumed, deadline
// still enforced), and the errors-are-never-cached rule.

#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/pipeline/semantic_cache.h"
#include "src/query/eval.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

TEST(SemanticCacheTest, LookupInsertAndLruEviction) {
  SemanticCacheOptions options;
  options.max_entries = 3;
  SemanticCache cache(options);

  EXPECT_EQ(cache.Lookup("a"), std::nullopt);
  cache.Insert("a", true);
  cache.Insert("b", false);
  cache.Insert("c", true);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup("a"), std::optional<bool>(true));
  EXPECT_EQ(cache.Lookup("b"), std::optional<bool>(false));

  // "c" is now least recent; a fourth insert evicts it, not "a" or "b".
  cache.Insert("d", true);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup("c"), std::nullopt);
  EXPECT_EQ(cache.Lookup("a"), std::optional<bool>(true));
  EXPECT_EQ(cache.Lookup("d"), std::optional<bool>(true));

  const SemanticCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 2u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(SemanticCacheTest, ByteBoundEvictsAndOversizedKeysAreIgnored) {
  SemanticCacheOptions options;
  options.max_bytes = 400;  // Room for ~3 small entries (96B overhead each).
  SemanticCache cache(options);

  cache.Insert(std::string(200, 'k'), true);  // Fits alone.
  EXPECT_EQ(cache.size(), 1u);
  cache.Insert(std::string(200, 'm'), true);  // Evicts the first.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), options.max_bytes);

  // A key that could never fit is dropped without disturbing the cache.
  cache.Insert(std::string(1000, 'x'), true);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(std::string(200, 'm')), std::optional<bool>(true));
}

TEST(SemanticCacheTest, MetricsExportThroughRegistry) {
  MetricsRegistry registry;
  SemanticCacheOptions options;
  options.max_entries = 1;
  options.metrics = &registry;
  SemanticCache cache(options);

  cache.Insert("a", true);
  cache.Insert("b", true);  // Evicts "a".
  (void)cache.Lookup("b");
  (void)cache.Lookup("a");
  EXPECT_EQ(registry.counter("semcache.hits")->value(), 1u);
  EXPECT_EQ(registry.counter("semcache.misses")->value(), 1u);
  EXPECT_EQ(registry.counter("semcache.evictions")->value(), 1u);
  EXPECT_EQ(registry.counter("semcache.insertions")->value(), 2u);
  EXPECT_EQ(registry.gauge("semcache.entries")->value(), 1);
  EXPECT_GT(registry.gauge("semcache.bytes")->value(), 0);
}

TEST(SemanticCacheTest, KeySeparatesEntryIdentityAndOptions) {
  EvalOptions base;
  const std::string canonical = "connect(A, B)";
  const std::string key = SemanticCacheKey(7, 1, canonical, base);

  // Same inputs -> same key (the cache depends on determinism).
  EXPECT_EQ(SemanticCacheKey(7, 1, canonical, base), key);
  // Any identity component fractures the key: a re-ingest (new entry id),
  // a store format bump, or another query.
  EXPECT_NE(SemanticCacheKey(8, 1, canonical, base), key);
  EXPECT_NE(SemanticCacheKey(7, 2, canonical, base), key);
  EXPECT_NE(SemanticCacheKey(7, 1, "connect(A, C)", base), key);

  // Verdict-relevant options fracture it too...
  EvalOptions other = base;
  other.strategy = EvalStrategy::kBaseline;
  EXPECT_NE(SemanticCacheKey(7, 1, canonical, other), key);
  other = base;
  other.max_region_candidates = 1;
  EXPECT_NE(SemanticCacheKey(7, 1, canonical, other), key);
  other = base;
  other.max_enumeration_steps = 1;
  EXPECT_NE(SemanticCacheKey(7, 1, canonical, other), key);
  other = base;
  other.num_threads = 4;
  EXPECT_NE(SemanticCacheKey(7, 1, canonical, other), key);
  other = base;
  other.plan = true;
  EXPECT_NE(SemanticCacheKey(7, 1, canonical, other), key);

  // ...while the wall-clock knobs do not: a verdict is equally valid
  // under any deadline, and admission checks handle expiry.
  other = base;
  other.deadline = Deadline::AfterMillis(1);
  CancelToken cancel;
  other.cancel = &cancel;
  EXPECT_EQ(SemanticCacheKey(7, 1, canonical, other), key);
}

TEST(SemanticCacheTest, EquivalentQueriesShareOneEntry) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 42;
  eval.cache_format_version = 1;

  // Four spellings of one query: operand order, double negation, the
  // implies expansion. All collapse to one canonical key.
  const char* spellings[] = {
      "connect(A, B) and connect(A, C)",
      "connect(C, A) and connect(B, A)",
      "not (not (connect(A, B) and connect(A, C)))",
      "not (connect(A, B) implies not connect(A, C))",
  };
  std::optional<bool> verdict;
  for (const char* spelling : spellings) {
    const auto result = EvaluateQueryCached(engine, spelling, eval);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!verdict) verdict = *result;
    EXPECT_EQ(*result, *verdict) << spelling;
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(SemanticCacheTest, ReingestIdentityChangeRoutesAroundStaleVerdicts) {
  // The same query against the "same" catalog name must re-evaluate when
  // the underlying bytes changed. Identity is the entry id (payload
  // checksum), never the name: simulate a re-ingest by switching ids.
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 1;
  eval.cache_format_version = 1;

  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  eval.cache_entry_id = 2;  // Re-ingest under the same name: new id.
  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SemanticCacheTest, ZeroEntryIdDisablesCaching) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 0;  // Inline text: no durable identity.

  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
}

TEST(SemanticCacheTest, HitDoesNotReevaluateOrConsumeBudget) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  MetricsRegistry registry;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 42;
  eval.metrics = &registry;

  const char* query = "exists region r . subset(r, A) and subset(r, B)";
  ASSERT_TRUE(EvaluateQueryCached(engine, query, eval).ok());
  const uint64_t atoms_after_miss = registry.counter("query.atoms")->value();
  const auto raw_after_miss = engine.cache_stats().raw_candidates;
  EXPECT_GT(atoms_after_miss, 0u);

  // The warm evaluation answers from the cache: the engine never runs, so
  // no atoms are evaluated and no enumeration budget is charged.
  ASSERT_TRUE(EvaluateQueryCached(engine, query, eval).ok());
  EXPECT_EQ(registry.counter("query.atoms")->value(), atoms_after_miss);
  EXPECT_EQ(engine.cache_stats().raw_candidates, raw_after_miss);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SemanticCacheTest, ExpiredDeadlineFailsEvenOnWarmEntry) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 42;

  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  ASSERT_EQ(cache.size(), 1u);

  // A warm verdict must not bypass admission control: the expired request
  // fails before the lookup, and the hit counter stays untouched.
  eval.deadline = Deadline::Expired();
  const auto expired = EvaluateQueryCached(engine, "connect(A, B)", eval);
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cache.stats().hits, 0u);

  eval.deadline = Deadline::Infinite();
  CancelToken cancel;
  cancel.Cancel();
  eval.cancel = &cancel;
  const auto cancelled = EvaluateQueryCached(engine, "connect(A, B)", eval);
  EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SemanticCacheTest, ErrorsAreNeverCached) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 42;
  eval.max_enumeration_steps = 1;  // Guaranteed ResourceExhausted below.

  // The body is false for every binding, so the exists must exhaust the
  // whole region range — which the 1-step budget cannot cover.
  const char* query = "exists region r . not connect(r, r)";
  const auto exhausted = EvaluateQueryCached(engine, query, eval);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);

  // With a workable budget the same key gets a verdict; the earlier
  // failure left nothing behind to shadow it.
  eval.max_enumeration_steps = int64_t{1} << 22;
  const auto ok = EvaluateQueryCached(engine, query, eval);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SemanticCacheTest, DistinctBudgetsDoNotShareVerdicts) {
  // A verdict computed under one budget must not answer a request with
  // another: exhaustion points differ, so the keys differ.
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  SemanticCache cache;
  EvalOptions eval;
  eval.semantic_cache = &cache;
  eval.cache_entry_id = 42;

  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  eval.max_region_candidates = 1000;
  ASSERT_TRUE(EvaluateQueryCached(engine, "connect(A, B)", eval).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace topodb
