#include "src/algebraic/trace.h"

#include <gtest/gtest.h>

#include "src/algebraic/polynomial.h"
#include "src/invariant/canonical.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

Polynomial2 Disc(int64_t cx, int64_t cy, int64_t r2) {
  // r2 - (x-cx)^2 - (y-cy)^2
  Polynomial2 x = Polynomial2::X() - Polynomial2::Constant(Rational(cx));
  Polynomial2 y = Polynomial2::Y() - Polynomial2::Constant(Rational(cy));
  return Polynomial2::Constant(Rational(r2)) - x * x - y * y;
}

TEST(PolynomialTest, Arithmetic) {
  Polynomial2 p = Polynomial2::X() * Polynomial2::X() +
                  Polynomial2::Term(Rational(2), 0, 1) -
                  Polynomial2::Constant(Rational(3));
  EXPECT_EQ(p.Evaluate(Point(2, 5)), Rational(4 + 10 - 3));
  EXPECT_EQ(p.TotalDegree(), 2);
  EXPECT_EQ(p.SignAt(Point(0, 0)), -1);
  EXPECT_EQ(p.SignAt(Point(2, 0)), 1);
  EXPECT_EQ((p - p).ToString(), "0");
  EXPECT_TRUE((p - p).is_zero());
}

TEST(PolynomialTest, ProductExpansion) {
  // (x + y)^2 = x^2 + 2xy + y^2.
  Polynomial2 s = Polynomial2::X() + Polynomial2::Y();
  Polynomial2 sq = s * s;
  EXPECT_EQ(sq.num_terms(), 3u);
  EXPECT_EQ(sq.Evaluate(Point(3, 4)), Rational(49));
}

TEST(PolynomialTest, ExactSignNearCurve) {
  // Exact rational evaluation distinguishes points epsilon-close to the
  // unit circle.
  Polynomial2 p = Disc(0, 0, 1);
  Point barely_inside(Rational(BigInt("99999999999"), BigInt("100000000000")),
                      Rational(0));
  Point barely_outside(Rational(BigInt("100000000001"),
                                BigInt("100000000000")),
                       Rational(0));
  EXPECT_EQ(p.SignAt(barely_inside), 1);
  EXPECT_EQ(p.SignAt(barely_outside), -1);
}

TEST(TraceTest, UnitDiscIsADisc) {
  Box box = Box::FromPoints(Point(-2, -2), Point(2, 2));
  Result<Region> region = TraceAlgebraicRegion(Disc(0, 0, 1), box, 16);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_EQ(region->declared_class(), RegionClass::kAlg);
  // Interior/exterior membership matches the polynomial.
  EXPECT_EQ(region->Locate(Point(0, 0)), PointLocation::kInterior);
  EXPECT_EQ(region->Locate(Point(2, 0)), PointLocation::kExterior);
}

TEST(TraceTest, TracedDiscHasSquareInvariant) {
  // Theorem 3.5 in action: a traced algebraic disc and a plain square have
  // the same invariant.
  Box box = Box::FromPoints(Point(-2, -2), Point(2, 2));
  SpatialInstance traced;
  ASSERT_TRUE(traced
                  .AddRegion("A",
                             *TraceAlgebraicRegion(Disc(0, 0, 1), box, 12))
                  .ok());
  Result<InvariantData> a = ComputeInvariant(traced);
  Result<InvariantData> b = ComputeInvariant(SingleRegionInstance());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*Isomorphic(*a, *b));
}

TEST(TraceTest, TwoOverlappingDiscsMatchFig1c) {
  // Two overlapping algebraic discs have the Fig 1c invariant (two
  // overlapping rectangles): the paper's Alg -> Poly representation claim.
  Box box = Box::FromPoints(Point(-4, -4), Point(8, 4));
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *TraceAlgebraicRegion(Disc(0, 0, 4), box, 24))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *TraceAlgebraicRegion(Disc(3, 0, 4), box, 24))
                  .ok());
  Result<InvariantData> traced = ComputeInvariant(instance);
  Result<InvariantData> reference = ComputeInvariant(Fig1cInstance());
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(*Isomorphic(*traced, *reference));
}

TEST(TraceTest, EllipseTraces) {
  // 36 - 4x^2 - 9y^2 > 0: ellipse with semi-axes 3 and 2.
  Polynomial2 ellipse =
      Polynomial2::Constant(Rational(36)) -
      Polynomial2::Term(Rational(4), 2, 0) -
      Polynomial2::Term(Rational(9), 0, 2);
  // Resolution 21 keeps the grid lines off the curve's rational points
  // (the tracer treats exact zeros as outside, so a grid aligned with the
  // zero set degenerates — the documented caveat).
  Box box = Box::FromPoints(Point(-4, -3), Point(4, 3));
  Result<Region> region = TraceAlgebraicRegion(ellipse, box, 21);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_EQ(region->Locate(Point(Rational(5, 2), Rational(0))),
            PointLocation::kInterior);
  EXPECT_EQ(region->Locate(Point(Rational(0), Rational(5, 2))),
            PointLocation::kExterior);
}

TEST(TraceTest, RejectsNonDiscPositiveSet) {
  // Two separate discs: (1 - (x-3)^2 - y^2)(1 - (x+3)^2 - y^2) is positive
  // on both discs... actually the product is positive when both factors
  // share a sign; use max-style union via a polynomial that is positive on
  // two components: p = 1 - (x^2 - 9)^2 - y^2 has two bumps near x = +-3.
  Polynomial2 x2 = Polynomial2::X() * Polynomial2::X();
  Polynomial2 shifted = x2 - Polynomial2::Constant(Rational(9));
  Polynomial2 p = Polynomial2::Constant(Rational(1)) - shifted * shifted -
                  Polynomial2::Y() * Polynomial2::Y();
  Box box = Box::FromPoints(Point(-5, -2), Point(5, 2));
  Result<Region> region = TraceAlgebraicRegion(p, box, 40);
  EXPECT_FALSE(region.ok());
}

TEST(TraceTest, RejectsRegionTouchingBox) {
  Box box = Box::FromPoints(Point(0, 0), Point(1, 1));  // Unit disc leaks.
  EXPECT_FALSE(TraceAlgebraicRegion(Disc(0, 0, 1), box, 8).ok());
}

TEST(TraceTest, RejectsEmptyPositiveSet) {
  Box box = Box::FromPoints(Point(-2, -2), Point(2, 2));
  Polynomial2 negative = Polynomial2::Constant(Rational(-1));
  EXPECT_FALSE(TraceAlgebraicRegion(negative, box, 8).ok());
}

TEST(TraceTest, ResolutionRefinesTopology) {
  // An annulus-like band (r in (2, 3)) is not a disc; at any resolution
  // the tracer must refuse it (two boundary curves).
  Polynomial2 r2 = Polynomial2::X() * Polynomial2::X() +
                   Polynomial2::Y() * Polynomial2::Y();
  Polynomial2 band = (r2 - Polynomial2::Constant(Rational(4))) *
                     (Polynomial2::Constant(Rational(9)) - r2);
  Box box = Box::FromPoints(Point(-4, -4), Point(4, 4));
  EXPECT_FALSE(TraceAlgebraicRegion(band, box, 32).ok());
}

TEST(CircleRegionTest, ExactPointsOnCircle) {
  Result<Region> circle = CircleRegion(Point(0, 0), Rational(5), 32);
  ASSERT_TRUE(circle.ok());
  // Every vertex satisfies x^2 + y^2 == 25 exactly.
  for (const Point& p : circle->boundary().vertices()) {
    EXPECT_EQ(p.x * p.x + p.y * p.y, Rational(25));
  }
  EXPECT_EQ(circle->Locate(Point(0, 0)), PointLocation::kInterior);
  EXPECT_EQ(circle->Locate(Point(6, 0)), PointLocation::kExterior);
  EXPECT_EQ(circle->Locate(Point(5, 0)), PointLocation::kBoundary);
}

TEST(CircleRegionTest, OverlappingCirclesFig1cInvariant) {
  SpatialInstance instance;
  ASSERT_TRUE(instance.AddRegion("A", *CircleRegion(Point(0, 0), Rational(4),
                                                    24))
                  .ok());
  ASSERT_TRUE(instance.AddRegion("B", *CircleRegion(Point(3, 0), Rational(4),
                                                    24))
                  .ok());
  Result<InvariantData> circles = ComputeInvariant(instance);
  Result<InvariantData> reference = ComputeInvariant(Fig1cInstance());
  ASSERT_TRUE(circles.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(*Isomorphic(*circles, *reference));
}

TEST(CircleRegionTest, RejectsBadRadius) {
  EXPECT_FALSE(CircleRegion(Point(0, 0), Rational(0), 16).ok());
  EXPECT_FALSE(CircleRegion(Point(0, 0), Rational(-2), 16).ok());
}

}  // namespace
}  // namespace topodb
