// src/base/interval.h: the middle stage of the predicate filter. The
// property under test everywhere is containment — an interval op must
// return an interval enclosing the exact real result — plus the tightness
// properties the filter's hit rate depends on (exact inputs stay points
// through exact operations).

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <random>

#include <gtest/gtest.h>

#include "src/base/interval.h"
#include "src/base/rational.h"

namespace topodb {
namespace {

// Exact conversion of a finite double. Every finite double is
// mantissa * 2^e with an integral 53-bit mantissa, so the result is a
// perfect rational oracle for interval containment checks.
Rational ExactRational(double v) {
  int exp = 0;
  const double m = std::frexp(v, &exp);
  const auto mant = static_cast<int64_t>(std::ldexp(m, 53));
  exp -= 53;
  if (exp >= 0) return Rational(BigInt(mant).ShiftLeft(exp));
  return Rational(BigInt(mant), BigInt(1).ShiftLeft(-exp));
}

TEST(NextDownUpTest, StepsOneUlpInEachDirection) {
  EXPECT_LT(NextDown(1.0), 1.0);
  EXPECT_GT(NextUp(1.0), 1.0);
  EXPECT_EQ(NextUp(NextDown(1.0)), 1.0);
  EXPECT_EQ(NextDown(NextUp(-3.5)), -3.5);
  // Matches the libm reference on both signs and across magnitudes.
  for (double v : {1.0, -1.0, 0.5, -0.5, 1e300, -1e300, 1e-300, -1e-300,
                   DBL_MAX, -DBL_MAX, 0x1p-1074, -0x1p-1074}) {
    EXPECT_EQ(NextDown(v), std::nextafter(v, -HUGE_VAL)) << v;
    EXPECT_EQ(NextUp(v), std::nextafter(v, HUGE_VAL)) << v;
  }
}

TEST(NextDownUpTest, ZeroAndBoundaryCases) {
  EXPECT_EQ(NextDown(0.0), -0x1p-1074);
  EXPECT_EQ(NextDown(-0.0), -0x1p-1074);
  EXPECT_EQ(NextUp(0.0), 0x1p-1074);
  EXPECT_EQ(NextUp(-0.0), 0x1p-1074);
  // The infinities are absorbing in their own direction and step onto
  // DBL_MAX in the other.
  EXPECT_EQ(NextDown(-HUGE_VAL), -HUGE_VAL);
  EXPECT_EQ(NextUp(HUGE_VAL), HUGE_VAL);
  EXPECT_EQ(NextDown(HUGE_VAL), DBL_MAX);
  EXPECT_EQ(NextUp(-HUGE_VAL), -DBL_MAX);
  EXPECT_EQ(NextUp(DBL_MAX), HUGE_VAL);
}

TEST(IntervalTest, ExactValuesStayPointsThroughExactArithmetic) {
  const IntervalDouble a = IntervalDouble::Exact(3.0);
  const IntervalDouble b = IntervalDouble::Exact(0.25);
  const IntervalDouble sum = a + b;
  EXPECT_TRUE(sum.IsPoint());
  EXPECT_EQ(sum.lo(), 3.25);
  const IntervalDouble diff = a - b;
  EXPECT_TRUE(diff.IsPoint());
  EXPECT_EQ(diff.lo(), 2.75);
  // Products widen by one ulp each side even when exact (documented
  // tradeoff: no FMA residual check), except for the absorbed zero.
  const IntervalDouble z = IntervalDouble::Exact(0.0) * a;
  EXPECT_TRUE(z.IsPoint());
  EXPECT_EQ(z.lo(), 0.0);
}

TEST(IntervalTest, CertifiedSignReadsOnlyDecidedIntervals) {
  int sign = 99;
  EXPECT_TRUE(IntervalDouble::FromBounds(0.5, 2.0).CertifiedSign(&sign));
  EXPECT_EQ(sign, 1);
  EXPECT_TRUE(IntervalDouble::FromBounds(-2.0, -0.5).CertifiedSign(&sign));
  EXPECT_EQ(sign, -1);
  EXPECT_TRUE(IntervalDouble().CertifiedSign(&sign));
  EXPECT_EQ(sign, 0);
  // Straddling zero — including half-open touches of zero — is uncertain:
  // the exact value could be 0 or could be the nonzero side.
  EXPECT_FALSE(IntervalDouble::FromBounds(-1.0, 1.0).CertifiedSign(&sign));
  EXPECT_FALSE(IntervalDouble::FromBounds(0.0, 1.0).CertifiedSign(&sign));
  EXPECT_FALSE(IntervalDouble::FromBounds(-1.0, 0.0).CertifiedSign(&sign));
}

TEST(IntervalTest, SumsNearOverflowSaturateButStayContained) {
  const IntervalDouble big = IntervalDouble::Exact(DBL_MAX);
  const IntervalDouble sum = big + big;
  // The exact value 2*DBL_MAX exceeds every finite double; the certified
  // enclosure must put it above DBL_MAX without inventing a finite upper
  // bound.
  EXPECT_EQ(sum.lo(), DBL_MAX);
  EXPECT_EQ(sum.hi(), HUGE_VAL);
  const IntervalDouble neg = (-big) + (-big);
  EXPECT_EQ(neg.lo(), -HUGE_VAL);
  EXPECT_EQ(neg.hi(), -DBL_MAX);
  int sign = 0;
  EXPECT_TRUE(sum.CertifiedSign(&sign));
  EXPECT_EQ(sign, 1);
}

// Containment fuzz: evaluate (a op b) in exact rational arithmetic and
// check the interval result encloses it. Operands are doubles (hence
// exactly representable as rationals), so Rational is a perfect oracle.
TEST(IntervalTest, RandomizedContainmentAgainstRationalOracle) {
  std::mt19937_64 rng(20260809);
  std::uniform_real_distribution<double> mag(-1e9, 1e9);
  std::uniform_int_distribution<int> scale(-60, 60);
  for (int i = 0; i < 500; ++i) {
    const double x = std::ldexp(mag(rng), scale(rng));
    const double y = std::ldexp(mag(rng), scale(rng));
    const Rational rx = ExactRational(x);
    const Rational ry = ExactRational(y);
    const IntervalDouble ix = IntervalDouble::Exact(x);
    const IntervalDouble iy = IntervalDouble::Exact(y);

    const IntervalDouble sum = ix + iy;
    const Rational rs = rx + ry;
    EXPECT_LE(ExactRational(sum.lo()).Compare(rs), 0) << x << "+" << y;
    EXPECT_GE(ExactRational(sum.hi()).Compare(rs), 0) << x << "+" << y;

    const IntervalDouble diff = ix - iy;
    const Rational rd = rx - ry;
    EXPECT_LE(ExactRational(diff.lo()).Compare(rd), 0);
    EXPECT_GE(ExactRational(diff.hi()).Compare(rd), 0);

    const IntervalDouble prod = ix * iy;
    const Rational rp = rx * ry;
    if (std::isfinite(prod.lo())) {
      EXPECT_LE(ExactRational(prod.lo()).Compare(rp), 0)
          << x << "*" << y;
    }
    if (std::isfinite(prod.hi())) {
      EXPECT_GE(ExactRational(prod.hi()).Compare(rp), 0)
          << x << "*" << y;
    }
  }
}

TEST(IntervalTest, WideOperandProductsKeepAllCorners) {
  // A straddling interval times a negative one: the true range is
  // [2 * -5, -3 * -5] = [-10, 15]; corner enumeration plus the ulp step
  // must cover it regardless of sign pattern.
  const IntervalDouble a = IntervalDouble::FromBounds(-3.0, 2.0);
  const IntervalDouble b = IntervalDouble::FromBounds(-5.0, -5.0);
  const IntervalDouble p = a * b;
  EXPECT_LE(p.lo(), -10.0);
  EXPECT_GE(p.hi(), 15.0);
}

// --- Rational::ToIntervalDouble ------------------------------------------

void ExpectEncloses(const IntervalDouble& iv, const Rational& r,
                    const std::string& what) {
  if (std::isfinite(iv.lo())) {
    EXPECT_LE(ExactRational(iv.lo()).Compare(r), 0) << what;
  }
  if (std::isfinite(iv.hi())) {
    EXPECT_GE(ExactRational(iv.hi()).Compare(r), 0) << what;
  }
  EXPECT_LE(iv.lo(), iv.hi()) << what;
}

TEST(ToIntervalDoubleTest, RepresentableValuesAreExactPoints) {
  for (double v : {0.0, 1.0, -1.0, 0.5, -2.75, 1e300, 0x1p-900}) {
    const IntervalDouble iv = ExactRational(v).ToIntervalDouble();
    EXPECT_TRUE(iv.IsPoint()) << v;
    EXPECT_EQ(iv.lo(), v) << v;
  }
  // Deep subnormals sit outside the conservative exact-shift guard, so the
  // smallest double gets a (tight, correct) enclosure instead of a point.
  const IntervalDouble denorm =
      ExactRational(0x1p-1074).ToIntervalDouble();
  ExpectEncloses(denorm, ExactRational(0x1p-1074), "denorm_min");
  int sign = 0;
  EXPECT_FALSE(denorm.CertifiedSign(&sign) && sign == 0);
}

TEST(ToIntervalDoubleTest, NonRepresentableValuesGetTightEnclosures) {
  const Rational third(1, 3);
  const IntervalDouble iv = third.ToIntervalDouble();
  EXPECT_FALSE(iv.IsPoint());
  ExpectEncloses(iv, third, "1/3");
  // The truncated quotient brackets the value within one grid step (two
  // ulps when the quotient has 52 bits), and each bound takes one outward
  // ulp step: at most 4 ulps wide.
  EXPECT_LE(iv.hi(), NextUp(NextUp(NextUp(NextUp(iv.lo())))));
}

Rational PowerOfTen(int exp) {
  Rational ten(10);
  Rational r(1);
  for (int i = 0; i < std::abs(exp); ++i) r = r * ten;
  if (exp < 0) return Rational(1) / r;
  return r;
}

TEST(ToIntervalDoubleTest, OverflowSaturatesWithCorrectDirection) {
  const Rational huge = PowerOfTen(400);  // Far above DBL_MAX ~ 1.8e308.
  const IntervalDouble iv = huge.ToIntervalDouble();
  EXPECT_EQ(iv.hi(), HUGE_VAL);
  EXPECT_GE(iv.lo(), DBL_MAX);
  int sign = 0;
  ASSERT_TRUE(iv.CertifiedSign(&sign));
  EXPECT_EQ(sign, 1);

  const IntervalDouble neg = (Rational(0) - huge).ToIntervalDouble();
  EXPECT_EQ(neg.lo(), -HUGE_VAL);
  EXPECT_LE(neg.hi(), -DBL_MAX);
  ASSERT_TRUE(neg.CertifiedSign(&sign));
  EXPECT_EQ(sign, -1);
}

TEST(ToIntervalDoubleTest, UnderflowStaysNonZeroSided) {
  // 10^-400 is below the smallest subnormal: it must round to an interval
  // that does NOT certify sign 0 (the value is positive, not zero).
  const Rational tiny = PowerOfTen(-400);
  const IntervalDouble iv = tiny.ToIntervalDouble();
  ExpectEncloses(iv, tiny, "1e-400");
  int sign = 99;
  if (iv.CertifiedSign(&sign)) {
    EXPECT_EQ(sign, 1) << "an underflowed positive must never certify 0";
  }
  EXPECT_GE(iv.lo(), 0.0);
  EXPECT_GT(iv.hi(), 0.0);
}

TEST(ToIntervalDoubleTest, FastVariantContainsTheTightVariant) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> num(-1'000'000'000, 1'000'000'000);
  std::uniform_int_distribution<int64_t> den(1, 1'000'000'000);
  for (int i = 0; i < 300; ++i) {
    const Rational r(num(rng), den(rng));
    const IntervalDouble tight = r.ToIntervalDouble();
    const IntervalDouble fast = r.ToIntervalDoubleFast();
    ExpectEncloses(fast, r, r.ToString());
    // Fast may be wider, never narrower.
    EXPECT_LE(fast.lo(), tight.lo()) << r.ToString();
    EXPECT_GE(fast.hi(), tight.hi()) << r.ToString();
  }
}

TEST(ToIntervalDoubleTest, FastVariantHandlesHugeBitLengths) {
  // Over the 512-bit static cap the fast path must still return a valid
  // (possibly saturated) enclosure rather than garbage.
  BigInt factor(1);
  for (int i = 0; i < 700; ++i) factor = factor * BigInt(2);
  const Rational big(factor, BigInt(3));
  ExpectEncloses(big.ToIntervalDoubleFast(), big, "2^700/3 fast");
  ExpectEncloses(big.ToIntervalDouble(), big, "2^700/3");
  const Rational inv(BigInt(3), factor);
  ExpectEncloses(inv.ToIntervalDoubleFast(), inv, "3/2^700 fast");
  ExpectEncloses(inv.ToIntervalDouble(), inv, "3/2^700");
}

}  // namespace
}  // namespace topodb
