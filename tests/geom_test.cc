#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/geom/box.h"
#include "src/geom/point.h"
#include "src/geom/polygon.h"
#include "src/geom/predicates.h"

namespace topodb {
namespace {

TEST(PredicatesTest, OrientationSigns) {
  Point a(0, 0), b(1, 0), c(0, 1);
  EXPECT_EQ(Orientation(a, b, c), 1);   // Left turn.
  EXPECT_EQ(Orientation(a, c, b), -1);  // Right turn.
  EXPECT_EQ(Orientation(a, b, Point(2, 0)), 0);  // Collinear.
}

TEST(PredicatesTest, OrientationExactOnNearDegenerate) {
  // A classic double-precision failure case: tiny offsets from a line.
  Point a(Rational(0), Rational(0));
  Point b(Rational(1'000'000'000), Rational(1'000'000'000));
  Point c(Rational(BigInt("2000000000000000001"), BigInt("2000000000")),
          Rational(1'000'000'000));
  // c.x is 1e9 + 1/(2e9): infinitesimally right of the line y == x.
  EXPECT_EQ(Orientation(a, b, c), -1);
}

TEST(PredicatesTest, OnSegment) {
  Point a(0, 0), b(4, 4);
  EXPECT_TRUE(OnSegment(Point(2, 2), a, b));
  EXPECT_TRUE(OnSegment(a, a, b));
  EXPECT_TRUE(OnSegment(b, a, b));
  EXPECT_FALSE(OnSegment(Point(5, 5), a, b));
  EXPECT_FALSE(OnSegment(Point(2, 3), a, b));
  EXPECT_TRUE(StrictlyInsideSegment(Point(1, 1), a, b));
  EXPECT_FALSE(StrictlyInsideSegment(a, a, b));
}

TEST(PredicatesTest, SegmentIntersectionProper) {
  auto r = IntersectSegments(Point(0, 0), Point(4, 4), Point(0, 4),
                             Point(4, 0));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p0, Point(2, 2));
}

TEST(PredicatesTest, SegmentIntersectionRationalPoint) {
  auto r = IntersectSegments(Point(0, 0), Point(3, 1), Point(0, 1),
                             Point(3, 0));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p0, Point(Rational(3, 2), Rational(1, 2)));
}

TEST(PredicatesTest, SegmentIntersectionAtEndpoint) {
  auto r = IntersectSegments(Point(0, 0), Point(2, 2), Point(2, 2),
                             Point(4, 0));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p0, Point(2, 2));
}

TEST(PredicatesTest, SegmentIntersectionTTouch) {
  auto r = IntersectSegments(Point(0, 0), Point(4, 0), Point(2, 0),
                             Point(2, 3));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p0, Point(2, 0));
}

TEST(PredicatesTest, SegmentIntersectionNone) {
  EXPECT_EQ(IntersectSegments(Point(0, 0), Point(1, 0), Point(0, 1),
                              Point(1, 1))
                .kind,
            SegmentIntersection::Kind::kNone);
  // Parallel, non-collinear.
  EXPECT_EQ(IntersectSegments(Point(0, 0), Point(2, 2), Point(0, 1),
                              Point(2, 3))
                .kind,
            SegmentIntersection::Kind::kNone);
  // Collinear but disjoint.
  EXPECT_EQ(IntersectSegments(Point(0, 0), Point(1, 1), Point(2, 2),
                              Point(3, 3))
                .kind,
            SegmentIntersection::Kind::kNone);
}

TEST(PredicatesTest, SegmentIntersectionCollinearOverlap) {
  auto r = IntersectSegments(Point(0, 0), Point(4, 0), Point(2, 0),
                             Point(6, 0));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kOverlap);
  EXPECT_EQ(r.p0, Point(2, 0));
  EXPECT_EQ(r.p1, Point(4, 0));
}

TEST(PredicatesTest, SegmentIntersectionCollinearTouchPoint) {
  auto r = IntersectSegments(Point(0, 0), Point(2, 0), Point(2, 0),
                             Point(5, 0));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p0, Point(2, 0));
}

TEST(PredicatesTest, SegmentIntersectionDegenerate) {
  // Point-segment.
  auto r = IntersectSegments(Point(1, 1), Point(1, 1), Point(0, 0),
                             Point(2, 2));
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p0, Point(1, 1));
  // Point off segment.
  EXPECT_EQ(IntersectSegments(Point(3, 1), Point(3, 1), Point(0, 0),
                              Point(2, 2))
                .kind,
            SegmentIntersection::Kind::kNone);
}

TEST(PredicatesTest, CcwDirectionOrder) {
  // Eight compass directions in counterclockwise order from +x.
  std::vector<Point> dirs = {Point(1, 0),  Point(1, 1),   Point(0, 1),
                             Point(-1, 1), Point(-1, 0),  Point(-1, -1),
                             Point(0, -1), Point(1, -1)};
  for (size_t i = 0; i < dirs.size(); ++i) {
    for (size_t j = 0; j < dirs.size(); ++j) {
      EXPECT_EQ(CcwDirectionLess(dirs[i], dirs[j]), i < j)
          << i << " vs " << j;
    }
  }
}

TEST(PredicatesTest, CcwDirectionScaleInvariant) {
  EXPECT_FALSE(CcwDirectionLess(Point(2, 2), Point(1, 1)));
  EXPECT_FALSE(CcwDirectionLess(Point(1, 1), Point(2, 2)));
  EXPECT_TRUE(SameDirection(Point(1, 1), Point(3, 3)));
  EXPECT_FALSE(SameDirection(Point(1, 1), Point(-1, -1)));
}

Polygon UnitSquare() {
  return Polygon({Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)});
}

TEST(PolygonTest, SignedAreaAndOrientation) {
  Polygon sq = UnitSquare();
  EXPECT_EQ(sq.SignedArea2(), Rational(32));
  EXPECT_TRUE(sq.IsCounterClockwise());
  Polygon cw({Point(0, 0), Point(0, 4), Point(4, 4), Point(4, 0)});
  EXPECT_FALSE(cw.IsCounterClockwise());
  cw.Normalize();
  EXPECT_TRUE(cw.IsCounterClockwise());
}

TEST(PolygonTest, ValidateAcceptsSimple) {
  EXPECT_TRUE(UnitSquare().Validate().ok());
  // Non-convex but simple (L-shape).
  Polygon ell({Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2),
               Point(2, 4), Point(0, 4)});
  EXPECT_TRUE(ell.Validate().ok());
}

TEST(PolygonTest, ValidateRejectsDegenerate) {
  EXPECT_FALSE(Polygon({Point(0, 0), Point(1, 0)}).Validate().ok());
  EXPECT_FALSE(Polygon({Point(0, 0), Point(1, 0), Point(1, 0)})
                   .Validate()
                   .ok());  // Zero-length edge.
  // Bowtie self-intersection.
  Polygon bowtie({Point(0, 0), Point(2, 2), Point(2, 0), Point(0, 2)});
  EXPECT_FALSE(bowtie.Validate().ok());
  // Collinear spike (zero area).
  Polygon spike({Point(0, 0), Point(2, 0), Point(4, 0)});
  EXPECT_FALSE(spike.Validate().ok());
  // Pinch: boundary touches itself at a vertex.
  Polygon pinch({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 0),
                 Point(-2, 2), Point(-2, 0)});
  EXPECT_FALSE(pinch.Validate().ok());
}

TEST(PolygonTest, LocateSquare) {
  Polygon sq = UnitSquare();
  EXPECT_EQ(sq.Locate(Point(2, 2)), PointLocation::kInterior);
  EXPECT_EQ(sq.Locate(Point(0, 0)), PointLocation::kBoundary);
  EXPECT_EQ(sq.Locate(Point(2, 0)), PointLocation::kBoundary);
  EXPECT_EQ(sq.Locate(Point(2, 4)), PointLocation::kBoundary);
  EXPECT_EQ(sq.Locate(Point(5, 2)), PointLocation::kExterior);
  EXPECT_EQ(sq.Locate(Point(-1, -1)), PointLocation::kExterior);
  // Ray through a vertex from the interior-line: exactness check.
  EXPECT_EQ(sq.Locate(Point(2, Rational(1, 3))), PointLocation::kInterior);
}

TEST(PolygonTest, LocateNonConvexWithHorizontalEdges) {
  // Staircase: horizontal edges aligned with query rays.
  Polygon stair({Point(0, 0), Point(6, 0), Point(6, 2), Point(4, 2),
                 Point(4, 4), Point(2, 4), Point(2, 6), Point(0, 6)});
  ASSERT_TRUE(stair.Validate().ok());
  EXPECT_EQ(stair.Locate(Point(1, 1)), PointLocation::kInterior);
  EXPECT_EQ(stair.Locate(Point(5, 1)), PointLocation::kInterior);
  EXPECT_EQ(stair.Locate(Point(5, 3)), PointLocation::kExterior);
  EXPECT_EQ(stair.Locate(Point(3, 3)), PointLocation::kInterior);
  EXPECT_EQ(stair.Locate(Point(3, 5)), PointLocation::kExterior);
  EXPECT_EQ(stair.Locate(Point(1, 5)), PointLocation::kInterior);
  EXPECT_EQ(stair.Locate(Point(3, 2)), PointLocation::kInterior);
  EXPECT_EQ(stair.Locate(Point(5, 2)), PointLocation::kBoundary);
}

TEST(PolygonTest, InteriorPointIsInterior) {
  std::vector<Polygon> polys = {
      UnitSquare(),
      Polygon({Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2),
               Point(2, 4), Point(0, 4)}),
      // Thin sliver triangle.
      Polygon({Point(0, 0), Point(100, 1), Point(100, 0)}),
      // Star-ish concave polygon.
      Polygon({Point(0, 0), Point(10, 4), Point(20, 0), Point(12, 10),
               Point(20, 20), Point(10, 16), Point(0, 20), Point(8, 10)}),
  };
  for (const Polygon& poly : polys) {
    ASSERT_TRUE(poly.Validate().ok());
    Point ip = poly.InteriorPoint();
    EXPECT_EQ(poly.Locate(ip), PointLocation::kInterior);
  }
}

TEST(PolygonTest, BoundingBox) {
  Box box = UnitSquare().BoundingBox();
  EXPECT_EQ(box.min, Point(0, 0));
  EXPECT_EQ(box.max, Point(4, 4));
  EXPECT_TRUE(box.Contains(Point(2, 2)));
  EXPECT_FALSE(box.Contains(Point(5, 2)));
}

TEST(BoxTest, IntersectsAndUnion) {
  Box a = Box::FromPoints(Point(0, 0), Point(2, 2));
  Box b = Box::FromPoints(Point(1, 1), Point(3, 3));
  Box c = Box::FromPoints(Point(5, 5), Point(6, 6));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  // Touching boxes intersect (closed boxes).
  Box d = Box::FromPoints(Point(2, 0), Point(3, 2));
  EXPECT_TRUE(a.Intersects(d));
  Box u = a.Union(c);
  EXPECT_EQ(u.min, Point(0, 0));
  EXPECT_EQ(u.max, Point(6, 6));
}

TEST(PolygonTest, LocateAgreesWithWindingRandomized) {
  // Property: for random query points and a fixed non-convex polygon, the
  // crossing-number location agrees with a brute-force winding computation
  // done in exact arithmetic.
  Polygon poly({Point(0, 0), Point(8, 2), Point(16, 0), Point(12, 8),
                Point(16, 16), Point(8, 12), Point(0, 16), Point(5, 8)});
  ASSERT_TRUE(poly.Validate().ok());
  std::mt19937_64 rng(42);
  const auto& v = poly.vertices();
  const size_t n = v.size();
  for (int iter = 0; iter < 400; ++iter) {
    Point p(static_cast<int64_t>(rng() % 37) - 10,
            static_cast<int64_t>(rng() % 37) - 10);
    bool on_boundary = false;
    for (size_t i = 0; i < n && !on_boundary; ++i) {
      on_boundary = OnSegment(p, v[i], v[(i + 1) % n]);
    }
    if (on_boundary) {
      EXPECT_EQ(poly.Locate(p), PointLocation::kBoundary);
      continue;
    }
    // Winding number via summed orientation-signed crossings of the
    // vertical upward ray (independent implementation).
    int winding = 0;
    for (size_t i = 0; i < n; ++i) {
      const Point& a = v[i];
      const Point& b = v[(i + 1) % n];
      if (a.x <= p.x) {
        if (b.x > p.x && Orientation(a, b, p) > 0) ++winding;
      } else {
        if (b.x <= p.x && Orientation(a, b, p) < 0) --winding;
      }
    }
    PointLocation expected =
        winding != 0 ? PointLocation::kInterior : PointLocation::kExterior;
    EXPECT_EQ(poly.Locate(p), expected) << p.ToString();
  }
}

}  // namespace
}  // namespace topodb
