// Property suites over randomized workloads: the cross-module invariants
// that must hold for every instance, swept over seeds and generator
// families with parameterized gtest.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/arrangement/cell_complex.h"
#include "src/embed/embed.h"
#include "src/fourint/four_intersection.h"
#include "src/invariant/canonical.h"
#include "src/invariant/validate.h"
#include "src/pipeline/invariant_cache.h"
#include "src/query/eval.h"
#include "src/region/transform.h"
#include "src/thematic/thematic.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

// --- Random rectangle instances, parameterized by (seed, size). ---

class RandomInstanceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  SpatialInstance Instance() const {
    auto [seed, size] = GetParam();
    return *RandomRectInstance(size, 50, static_cast<uint64_t>(seed));
  }
};

TEST_P(RandomInstanceProperty, InvariantValidates) {
  InvariantData data = *ComputeInvariant(Instance());
  EXPECT_TRUE(ValidateInvariant(data).ok()) << data.DebugString();
}

TEST_P(RandomInstanceProperty, EulerPerComponent) {
  InvariantData data = *ComputeInvariant(Instance());
  std::vector<int> cycle_of_dart, reps;
  data.ComputeCycles(&cycle_of_dart, &reps);
  const std::vector<int> comp = data.VertexComponents();
  const int num_comps = data.ComponentCount();
  std::vector<int> v(num_comps, 0), e(num_comps, 0), c(num_comps, 0);
  for (size_t i = 0; i < data.vertices.size(); ++i) ++v[comp[i]];
  for (const auto& edge : data.edges) ++e[comp[edge.v1]];
  for (int rep : reps) ++c[comp[data.Origin(rep)]];
  for (int k = 0; k < num_comps; ++k) {
    EXPECT_EQ(c[k], e[k] - v[k] + 2);
  }
}

TEST_P(RandomInstanceProperty, ThematicRoundTrip) {
  InvariantData data = *ComputeInvariant(Instance());
  Result<InvariantData> back = FromThematic(ToThematic(data));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*Isomorphic(data, *back));
}

TEST_P(RandomInstanceProperty, AffineAndMirrorInvariance) {
  SpatialInstance instance = Instance();
  InvariantData original = *ComputeInvariant(instance);
  AffineTransform affine = *AffineTransform::Make(3, 1, -7, 1, 2, 4);
  Result<SpatialInstance> moved = affine.ApplyToInstance(instance);
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(*Isomorphic(original, *ComputeInvariant(*moved)));
  Result<SpatialInstance> mirrored =
      AffineTransform::MirrorX().ApplyToInstance(instance);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_TRUE(*Isomorphic(original, *ComputeInvariant(*mirrored)));
}

TEST_P(RandomInstanceProperty, GridAndAllPairsArrangementsAgree) {
  SpatialInstance instance = Instance();
  ArrangementOptions grid;
  ArrangementOptions all_pairs;
  all_pairs.broad_phase = BroadPhase::kAllPairs;
  Result<CellComplex> with_grid = CellComplex::Build(instance, grid);
  Result<CellComplex> with_all_pairs = CellComplex::Build(instance, all_pairs);
  ASSERT_TRUE(with_grid.ok());
  ASSERT_TRUE(with_all_pairs.ok());
  // The broad phases must produce identical complexes cell by cell; the
  // debug dump covers vertices, edges, faces, labels and incidences.
  EXPECT_EQ(with_grid->DebugString(), with_all_pairs->DebugString());
}

TEST_P(RandomInstanceProperty, FilteredAndExactArrangementsAreIdentical) {
  // The acceptance bar for the predicate filter (src/geom/predicates.h): a
  // filter stage may only answer "uncertain", never a wrong sign, so the
  // filtered build must be byte-for-byte the exact-rational build — same
  // node numbering, same subsegments, same labels, same face structure.
  SpatialInstance instance = Instance();
  ArrangementOptions filtered;  // exact_predicates defaults to false.
  ArrangementOptions exact;
  exact.exact_predicates = true;
  Result<CellComplex> with_filter = CellComplex::Build(instance, filtered);
  Result<CellComplex> with_exact = CellComplex::Build(instance, exact);
  ASSERT_TRUE(with_filter.ok());
  ASSERT_TRUE(with_exact.ok());
  EXPECT_EQ(with_filter->DebugString(), with_exact->DebugString());
}

TEST_P(RandomInstanceProperty, CachedCanonicalAgreesWithUncached) {
  InvariantData data = *ComputeInvariant(Instance());
  InvariantCache cache;
  Result<std::string> direct = CanonicalInvariantString(data);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*cache.Canonical(data), *direct);  // Cold: computes.
  EXPECT_EQ(*cache.Canonical(data), *direct);  // Warm: cache hit.
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_P(RandomInstanceProperty, FourIntInverseConsistency) {
  SpatialInstance instance = Instance();
  const auto names = instance.names();
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      Result<FourIntRelation> fwd = Relate(instance, names[i], names[j]);
      Result<FourIntRelation> bwd = Relate(instance, names[j], names[i]);
      ASSERT_TRUE(fwd.ok());
      ASSERT_TRUE(bwd.ok());
      EXPECT_EQ(Inverse(*fwd), *bwd);
    }
  }
}

TEST_P(RandomInstanceProperty, FourIntAgreesWithQueryAtoms) {
  // The relation computed from labels must agree with the query-language
  // atom of the same name.
  SpatialInstance instance = Instance();
  Result<QueryEngine> engine = QueryEngine::Build(instance);
  ASSERT_TRUE(engine.ok());
  const auto names = instance.names();
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      FourIntRelation r = *Relate(instance, names[i], names[j]);
      std::string atom = std::string(FourIntRelationName(r)) + "(" +
                         names[i] + ", " + names[j] + ")";
      EXPECT_TRUE(*engine->Evaluate(atom)) << atom;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomInstanceProperty,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(3, 5, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// --- Generator families, parameterized by size. ---

class CombFamilyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CombFamilyProperty, CellCountsAreLinear) {
  const int teeth = GetParam();
  InvariantData data = *ComputeInvariant(*CombInstance(teeth));
  EXPECT_EQ(data.vertices.size(), 2u * teeth);
  EXPECT_EQ(data.edges.size(), 4u * teeth);
  EXPECT_EQ(data.faces.size(), 2u * teeth + 2);
}

TEST_P(CombFamilyProperty, TeethCountIsInvariant) {
  const int teeth = GetParam();
  InvariantData a = *ComputeInvariant(*CombInstance(teeth));
  InvariantData b = *ComputeInvariant(*CombInstance(teeth + 1));
  EXPECT_FALSE(*Isomorphic(a, b));
  EXPECT_TRUE(*Isomorphic(a, *ComputeInvariant(*CombInstance(teeth))));
}

TEST_P(CombFamilyProperty, EmbedRoundTrip) {
  const int teeth = GetParam();
  InvariantData data = *ComputeInvariant(*CombInstance(teeth));
  Result<SpatialInstance> rebuilt = ReconstructPolyInstance(data);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(*Isomorphic(data, *ComputeInvariant(*rebuilt)));
}

INSTANTIATE_TEST_SUITE_P(Teeth, CombFamilyProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

class NestedFamilyProperty : public ::testing::TestWithParam<int> {};

TEST_P(NestedFamilyProperty, ContainmentChainDepth) {
  const int depth = GetParam();
  InvariantData data = *ComputeInvariant(*NestedRingsInstance(depth));
  EXPECT_EQ(data.ComponentCount(), depth);
  EXPECT_TRUE(ValidateInvariant(data).ok());
  // Depth is a topological invariant of the family.
  InvariantData deeper = *ComputeInvariant(*NestedRingsInstance(depth + 1));
  EXPECT_FALSE(*Isomorphic(data, deeper));
}

TEST_P(NestedFamilyProperty, EmbedRoundTrip) {
  const int depth = GetParam();
  InvariantData data = *ComputeInvariant(*NestedRingsInstance(depth));
  Result<SpatialInstance> rebuilt = ReconstructPolyInstance(data);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(*Isomorphic(data, *ComputeInvariant(*rebuilt)));
}

INSTANTIATE_TEST_SUITE_P(Depth, NestedFamilyProperty,
                         ::testing::Values(1, 2, 3, 5));

// --- Random-instance embed round trips (small sizes). ---

class EmbedRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(EmbedRoundTripProperty, RandomInstances) {
  SpatialInstance instance =
      *RandomRectInstance(4, 40, static_cast<uint64_t>(GetParam()));
  InvariantData data = *ComputeInvariant(instance);
  Result<SpatialInstance> rebuilt = ReconstructPolyInstance(data);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(*Isomorphic(data, *ComputeInvariant(*rebuilt)))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbedRoundTripProperty,
                         ::testing::Range(1, 13));

// Filtered == exact differential across the structured generator families,
// whose degeneracies (shared corners, T-joints, collinear overlaps) differ
// from the random rectangles covered by RandomInstanceProperty.
TEST(FilteredExactDifferentialTest, GeneratorFamilies) {
  ArrangementOptions exact;
  exact.exact_predicates = true;
  const SpatialInstance instances[] = {
      *ChainInstance(12),      *RectGridInstance(3, 4), *CombInstance(4),
      *FlowerInstance(5),      *NestedRingsInstance(3),
      *RandomRectInstance(10, 1'000'000'000'000, 99),  // 40-bit coordinates.
  };
  for (const SpatialInstance& instance : instances) {
    Result<CellComplex> with_filter = CellComplex::Build(instance);
    Result<CellComplex> with_exact = CellComplex::Build(instance, exact);
    ASSERT_TRUE(with_filter.ok());
    ASSERT_TRUE(with_exact.ok());
    EXPECT_EQ(with_filter->DebugString(), with_exact->DebugString());
  }
}

}  // namespace
}  // namespace topodb
