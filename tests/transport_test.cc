// Transport-level failure paths of the wire protocol, driven
// deterministically over a socketpair: short reads that must reassemble
// into a full frame, EOF at a frame boundary (ordinary connection loss)
// versus EOF mid-frame (a truncated frame that can never be resynced),
// and the server-side truncated-frame counter.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/client/client.h"
#include "src/client/pool.h"
#include "src/server/server.h"
#include "src/server/wire.h"

namespace topodb {
namespace {

void MakePair(int fds[2]) {
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0) << strerror(errno);
}

bool ReadExact(int fd, char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = read(fd, buf + off, n - off);
    if (r <= 0) return false;
    off += static_cast<size_t>(r);
  }
  return true;
}

bool WriteExact(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = write(fd, bytes.data() + off, bytes.size() - off);
    if (w <= 0) return false;
    off += static_cast<size_t>(w);
  }
  return true;
}

// Consumes one request frame from the peer end so the test can respond
// (the client writes before it reads; a small request fits in the socket
// buffer, but draining it keeps the exchange honest).
FrameHeader DrainRequest(int fd) {
  char header_bytes[kWireHeaderBytes];
  EXPECT_TRUE(ReadExact(fd, header_bytes, kWireHeaderBytes));
  auto header =
      DecodeFrameHeader(std::string_view(header_bytes, kWireHeaderBytes));
  EXPECT_TRUE(header.ok()) << header.status().ToString();
  std::string payload(header->payload_len, '\0');
  if (header->payload_len > 0) {
    EXPECT_TRUE(ReadExact(fd, payload.data(), payload.size()));
  }
  return *header;
}

std::string PingResponseFrame(uint64_t request_id) {
  FrameHeader header;
  header.opcode = static_cast<uint16_t>(Opcode::kPing) | kWireResponseBit;
  header.request_id = request_id;
  return EncodeFrame(header, EncodeResponsePayload(Status::OK(), ""));
}

TEST(TransportTest, ShortReadsReassembleIntoAFullFrame) {
  int fds[2];
  MakePair(fds);
  TopoDbClient client = TopoDbClient::WrapFdForTest(fds[0]);
  std::thread peer([fd = fds[1]] {
    const FrameHeader request = DrainRequest(fd);
    const std::string frame = PingResponseFrame(request.request_id);
    // Dribble the response one byte at a time with pauses, so the
    // client's recv() loop sees genuinely partial reads.
    for (char c : frame) {
      ASSERT_TRUE(WriteExact(fd, std::string_view(&c, 1)));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    close(fd);
  });
  EXPECT_TRUE(client.Ping().ok());
  peer.join();
}

TEST(TransportTest, CleanCloseBeforeResponseIsConnectionLossNotTruncation) {
  int fds[2];
  MakePair(fds);
  TopoDbClient client = TopoDbClient::WrapFdForTest(fds[0]);
  std::thread peer([fd = fds[1]] {
    DrainRequest(fd);
    close(fd);  // EOF at a frame boundary: zero response bytes sent.
  });
  const Status st = client.Ping();
  peer.join();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("connection closed by server"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(st.message().find("truncated"), std::string::npos)
      << st.ToString();
}

TEST(TransportTest, EofMidHeaderReportsTruncatedFrameWithByteCounts) {
  int fds[2];
  MakePair(fds);
  TopoDbClient client = TopoDbClient::WrapFdForTest(fds[0]);
  std::thread peer([fd = fds[1]] {
    const FrameHeader request = DrainRequest(fd);
    const std::string frame = PingResponseFrame(request.request_id);
    ASSERT_TRUE(WriteExact(fd, std::string_view(frame.data(), 10)));
    close(fd);  // Dies 10 bytes into the 24-byte response header.
  });
  const Status st = client.Ping();
  peer.join();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("truncated frame"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("10 of 24"), std::string::npos)
      << st.ToString();
}

TEST(TransportTest, EofMidPayloadReportsTruncatedFrame) {
  int fds[2];
  MakePair(fds);
  TopoDbClient client = TopoDbClient::WrapFdForTest(fds[0]);
  std::thread peer([fd = fds[1]] {
    const FrameHeader request = DrainRequest(fd);
    const std::string frame = PingResponseFrame(request.request_id);
    ASSERT_GT(frame.size(), kWireHeaderBytes + 3);
    // Full header, then only 3 payload bytes: the header has committed
    // the stream to a payload, so even a zero-progress read here must
    // report truncation rather than a clean close.
    ASSERT_TRUE(WriteExact(
        fd, std::string_view(frame.data(), kWireHeaderBytes + 3)));
    close(fd);
  });
  const Status st = client.Ping();
  peer.join();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("truncated frame"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("3 of 8"), std::string::npos) << st.ToString();
}

TEST(TransportTest, CloseAfterCompletedExchangeIsStillACleanClose) {
  int fds[2];
  MakePair(fds);
  TopoDbClient client = TopoDbClient::WrapFdForTest(fds[0]);
  std::thread peer([fd = fds[1]] {
    const FrameHeader request = DrainRequest(fd);
    ASSERT_TRUE(WriteExact(fd, PingResponseFrame(request.request_id)));
    DrainRequest(fd);  // Second ping arrives...
    close(fd);         // ...and the peer goes away between frames.
  });
  EXPECT_TRUE(client.Ping().ok());
  const Status st = client.Ping();
  peer.join();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("connection closed by server"),
            std::string::npos)
      << st.ToString();
}

// --- Server side -----------------------------------------------------------

int ConnectRaw(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

uint64_t WaitForCounter(MetricsRegistry& registry, const std::string& name,
                        uint64_t at_least) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Counter* counter = registry.counter(name);
  while (counter->value() < at_least &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return counter->value();
}

TEST(ServerTruncationTest, PartialFramesIncrementTruncatedFrameCounter) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Half a header, then EOF.
  {
    const int fd = ConnectRaw(server.port());
    FrameHeader header;
    header.opcode = static_cast<uint16_t>(Opcode::kPing);
    header.request_id = 7;
    const std::string frame = EncodeFrame(header, "");
    ASSERT_TRUE(WriteExact(fd, std::string_view(frame.data(), 8)));
    close(fd);
  }
  EXPECT_EQ(WaitForCounter(server.metrics(), "server.truncated_frames", 1),
            1u);

  // Full header announcing a payload, then EOF before the payload.
  {
    const int fd = ConnectRaw(server.port());
    FrameHeader header;
    header.opcode = static_cast<uint16_t>(Opcode::kComputeInvariant);
    header.request_id = 8;
    std::string payload;
    AppendWireString(&payload, "region r0 { }");
    const std::string frame = EncodeFrame(header, payload);
    ASSERT_TRUE(
        WriteExact(fd, std::string_view(frame.data(), kWireHeaderBytes + 2)));
    close(fd);
  }
  EXPECT_EQ(WaitForCounter(server.metrics(), "server.truncated_frames", 2),
            2u);

  // A clean close at a frame boundary is NOT a truncated frame.
  {
    const int fd = ConnectRaw(server.port());
    close(fd);
  }
  EXPECT_EQ(WaitForCounter(server.metrics(), "server.connections", 3), 3u);
  EXPECT_EQ(server.metrics().counter("server.truncated_frames")->value(), 2u);

  server.Shutdown();
}

// --- Transport-error classification and retry ------------------------------

TEST(TransportTest, IsTransportErrorKeysOnTheMessageConvention) {
  EXPECT_TRUE(TopoDbClient::IsTransportError(
      Status::Unavailable("transport: connection closed by server")));
  // Server-sent Unavailable (shed, drain) is authoritative, not retryable.
  EXPECT_FALSE(
      TopoDbClient::IsTransportError(Status::Unavailable("queue full (1/1)")));
  EXPECT_FALSE(TopoDbClient::IsTransportError(
      Status::Unavailable("server draining")));
  // Other codes never classify as transport regardless of message.
  EXPECT_FALSE(TopoDbClient::IsTransportError(
      Status::Internal("transport: not actually")));
  EXPECT_FALSE(TopoDbClient::IsTransportError(Status::OK()));
}

TEST(TransportTest, RetryIsOffByDefault) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = TopoDbClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server.Shutdown().ok());
  const Status st = client->Ping();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(TopoDbClient::IsTransportError(st)) << st.ToString();
}

// Pins the retry loop's contract: exactly max_retries re-attempts are
// made (counted in client.retries), and the final status is still the
// transport-level Unavailable when every attempt fails.
TEST(TransportTest, RetryCountAndFinalStatusArePinned) {
  MetricsRegistry registry;
  ClientOptions options;
  options.retry.max_retries = 3;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(2);
  options.metrics = &registry;

  uint16_t port = 0;
  {
    TopoDbServer server(ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    auto client = TopoDbClient::Connect(port, options);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(server.Shutdown().ok());

    const Status st = client->Ping();
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(TopoDbClient::IsTransportError(st)) << st.ToString();
  }
  EXPECT_EQ(registry.counter("client.retries")->value(), 3u);
}

// The payoff case: the endpoint comes back between attempts (a shard
// restart) and the retried call succeeds on the new process.
TEST(TransportTest, RetrySucceedsAcrossAServerRestart) {
  MetricsRegistry registry;
  ClientOptions options;
  options.retry.max_retries = 3;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.metrics = &registry;

  TopoDbServer first(ServerOptions{});
  ASSERT_TRUE(first.Start().ok());
  const uint16_t port = first.port();
  auto client = TopoDbClient::Connect(port, options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(first.Shutdown().ok());

  ServerOptions restart_options;
  restart_options.port = port;  // Reclaim the exact port.
  TopoDbServer second(restart_options);
  if (!second.Start().ok()) {
    GTEST_SKIP() << "could not rebind " << port << " (port reuse race)";
  }
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(registry.counter("client.retries")->value(), 1u);
  EXPECT_TRUE(second.Shutdown().ok());
}

// --- Connection pool --------------------------------------------------------

TEST(ClientPoolTest, ReusesReleasedConnections) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientPoolOptions options;
  options.port = server.port();
  options.max_idle = 2;
  ClientPool pool(options);
  EXPECT_EQ(pool.idle(), 0u);
  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_TRUE((*lease)->Ping().ok());
  }  // Released back.
  EXPECT_EQ(pool.idle(), 1u);
  {
    auto lease = pool.Acquire();  // Pops the pooled connection.
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(pool.idle(), 0u);
    EXPECT_TRUE((*lease)->Ping().ok());
  }
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ClientPoolTest, DiscardDropsInsteadOfPooling) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientPoolOptions options;
  options.port = server.port();
  ClientPool pool(options);
  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok());
    lease->Discard();
  }
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ClientPoolTest, MaxIdleBoundsRetainedConnections) {
  TopoDbServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientPoolOptions options;
  options.port = server.port();
  options.max_idle = 1;
  ClientPool pool(options);
  {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
    ASSERT_TRUE(a.ok() && b.ok());
  }  // Both released; only one is kept.
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ClientPoolTest, AcquireFailsWithTransportErrorWhenEndpointIsDown) {
  uint16_t dead_port = 0;
  {
    TopoDbServer server(ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    dead_port = server.port();
    ASSERT_TRUE(server.Shutdown().ok());
  }
  ClientPoolOptions options;
  options.port = dead_port;
  ClientPool pool(options);
  auto lease = pool.Acquire();
  ASSERT_FALSE(lease.ok());
  EXPECT_TRUE(TopoDbClient::IsTransportError(lease.status()))
      << lease.status().ToString();
}

}  // namespace
}  // namespace topodb
