// ResolveWorkerCount: the single shared worker-count policy used by
// BatchComputeInvariants, BatchEvaluateQueries, and EvaluateParallel.

#include <gtest/gtest.h>

#include "src/base/threading.h"

namespace topodb {
namespace {

TEST(ResolveWorkerCountTest, NegativeIsInvalidArgument) {
  Result<size_t> workers = ResolveWorkerCount(-1, 5);
  ASSERT_FALSE(workers.ok());
  EXPECT_EQ(workers.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(workers.status().message().find("num_threads"), std::string::npos);
  EXPECT_EQ(ResolveWorkerCount(-7, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResolveWorkerCountTest, ZeroMeansHardwareConcurrencyClamped) {
  Result<size_t> workers = ResolveWorkerCount(0, 5);
  ASSERT_TRUE(workers.ok());
  EXPECT_GE(*workers, 1u);
  EXPECT_LE(*workers, 5u);
}

TEST(ResolveWorkerCountTest, PositiveIsTakenVerbatimUpToItemCount) {
  EXPECT_EQ(*ResolveWorkerCount(3, 5), 3u);
  EXPECT_EQ(*ResolveWorkerCount(1, 5), 1u);
  // More threads than items is wasteful: clamp to the item count.
  EXPECT_EQ(*ResolveWorkerCount(8, 5), 5u);
}

TEST(ResolveWorkerCountTest, EmptyBatchStillGetsOneWorker) {
  EXPECT_EQ(*ResolveWorkerCount(2, 0), 1u);
  EXPECT_EQ(*ResolveWorkerCount(0, 0), 1u);
}

}  // namespace
}  // namespace topodb
