#include "src/region/io.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

TEST(IoTest, WriteParseRoundTripPreservesExtents) {
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig6Instance(), Fig7bInstance(), NestedInstance()}) {
    std::string text = WriteInstanceText(instance);
    Result<SpatialInstance> back = ParseInstanceText(text);
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
    ASSERT_EQ(back->names(), instance.names());
    for (const auto& name : instance.names()) {
      const Region* original = *instance.ext(name);
      const Region* parsed = *back->ext(name);
      EXPECT_EQ(parsed->boundary().vertices(),
                original->boundary().vertices())
          << name;
    }
    // And therefore the invariants are identical.
    EXPECT_TRUE(*Isomorphic(*ComputeInvariant(instance),
                           *ComputeInvariant(*back)));
  }
}

TEST(IoTest, ParsesRationalAndDecimalCoordinates) {
  Result<SpatialInstance> instance = ParseInstanceText(
      "# a comment\n"
      "\n"
      "A: (0 0, 1/2 0, 1/2 1/3, 0 1/3)\n"
      "B: (2.5 0, 3 0, 3 -0.25, 2.5 -0.25)\n");
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->size(), 2u);
  const Region* a = *instance->ext("A");
  EXPECT_EQ(a->BoundingBox().max, Point(Rational(1, 2), Rational(1, 3)));
  const Region* b = *instance->ext("B");
  EXPECT_EQ(b->BoundingBox().min, Point(Rational(5, 2), Rational(-1, 4)));
  // Classes re-derived structurally.
  EXPECT_EQ(a->declared_class(), RegionClass::kRect);
}

TEST(IoTest, WriterEmitsParsableHeaderlessText) {
  std::string text = WriteInstanceText(Fig1cInstance());
  EXPECT_NE(text.find("A: ("), std::string::npos);
  EXPECT_NE(text.find("B: ("), std::string::npos);
}

TEST(IoTest, ParseErrorsAreLineNumbered) {
  Result<SpatialInstance> missing_colon = ParseInstanceText("A (0 0, 1 0)\n");
  EXPECT_FALSE(missing_colon.ok());
  EXPECT_NE(missing_colon.status().message().find("line 1"),
            std::string::npos);
  Result<SpatialInstance> bad_coord =
      ParseInstanceText("A: (0 0, 1 0, x 1)\n");
  EXPECT_FALSE(bad_coord.ok());
  Result<SpatialInstance> bad_vertex =
      ParseInstanceText("ok: (0 0, 4 0, 4 4)\nB: (0 0 7, 1 0, 1 1)\n");
  EXPECT_FALSE(bad_vertex.ok());
  EXPECT_NE(bad_vertex.status().message().find("line 2"), std::string::npos);
  Result<SpatialInstance> no_parens = ParseInstanceText("A: 0 0, 1 0, 1 1\n");
  EXPECT_FALSE(no_parens.ok());
  Result<SpatialInstance> empty_name = ParseInstanceText(": (0 0, 1 0, 1 1)\n");
  EXPECT_FALSE(empty_name.ok());
}

TEST(IoTest, RejectsNamesTheWriterCouldNotRoundTrip) {
  // A tab inside the name survives Strip but would not round-trip; the
  // parser reports it as an invalid name with its line number.
  Result<SpatialInstance> tabbed =
      ParseInstanceText("ok: (0 0, 4 0, 4 4)\na\tb: (0 0, 4 0, 4 4)\n");
  EXPECT_FALSE(tabbed.ok());
  EXPECT_NE(tabbed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(tabbed.status().message().find("invalid region name"),
            std::string::npos);
  // AddRegion refuses the names WriteInstanceText cannot represent, so a
  // serializable instance can never be constructed with them.
  SpatialInstance instance;
  EXPECT_FALSE(
      instance.AddRegion("a:b", *Region::MakeRect(Point(0, 0), Point(1, 1)))
          .ok());
  EXPECT_FALSE(
      instance.AddRegion("a\nb", *Region::MakeRect(Point(0, 0), Point(1, 1)))
          .ok());
}

TEST(IoTest, RejectsInvalidPolygons) {
  // Bowtie.
  EXPECT_FALSE(ParseInstanceText("A: (0 0, 2 2, 2 0, 0 2)\n").ok());
  // Too few vertices.
  EXPECT_FALSE(ParseInstanceText("A: (0 0, 1 0)\n").ok());
  // Duplicate names.
  EXPECT_FALSE(
      ParseInstanceText("A: (0 0, 4 0, 4 4)\nA: (8 8, 9 8, 9 9)\n").ok());
}

// One malformed input per row: the diagnostic must carry the exact
// (post-split) line number and a recognizable message fragment, whatever
// the line-ending convention or the size of the offending token.
TEST(IoTest, MalformedInputsProduceBoundedLineAccurateDiagnostics) {
  const std::string huge_literal(5000, '1');
  struct Case {
    const char* name;
    std::string text;
    const char* expect_line;
    const char* expect_fragment;
  };
  const std::vector<Case> cases = {
      {"crlf line endings",
       "A: (0 0, 4 0, 4 4)\r\nB: (0 0 7, 1 0, 1 1)\r\n",
       "line 2", "vertex"},
      {"bare cr line endings",
       "A: (0 0, 4 0, 4 4)\rB: (0 0, 1 0)\r",
       "line 2", ""},
      {"crlf after blank and comment",
       "# header\r\n\r\nA: (0 0, 4 0, 4 4)\r\nA (missing colon)\r\n",
       "line 4", ""},
      {"duplicate region name",
       "A: (0 0, 4 0, 4 4)\nB: (8 8, 9 8, 9 9)\nA: (20 20, 21 20, 21 21)\n",
       "line 3", "duplicate region name 'A'"},
      {"duplicate under crlf",
       "A: (0 0, 4 0, 4 4)\r\nA: (8 8, 9 8, 9 9)\r\n",
       "line 2", "duplicate region name 'A'"},
      {"oversized coordinate literal",
       "A: (0 0, " + huge_literal + " 0, 1 1)\n",
       "line 1", "coordinate literal exceeds"},
  };
  for (const Case& c : cases) {
    Result<SpatialInstance> parsed = ParseInstanceText(c.text);
    ASSERT_FALSE(parsed.ok()) << c.name;
    const std::string message = parsed.status().ToString();
    EXPECT_NE(message.find(c.expect_line), std::string::npos)
        << c.name << ": " << message;
    EXPECT_NE(message.find(c.expect_fragment), std::string::npos)
        << c.name << ": " << message;
    // Diagnostics stay bounded even when the input token is enormous:
    // long tokens are truncated to a snippet, never echoed wholesale.
    EXPECT_LT(message.size(), 256u) << c.name;
  }
}

TEST(IoTest, CrlfTextStillParsesCleanInput) {
  Result<SpatialInstance> instance = ParseInstanceText(
      "# comment\r\nA: (0 0, 4 0, 4 4)\r\n\r\nB: (8 8, 9 8, 9 9)\r\n");
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->size(), 2u);
}

TEST(IoTest, CoordinateLiteralAtTheLimitStillParses) {
  // 4096 chars is the documented bound; exactly at it must succeed.
  std::string big(4096, '0');
  big[0] = '1';  // 1 followed by 4095 zeros: a huge but valid integer.
  const std::string text =
      "A: (0 0, " + big + " 0, " + big + " " + big + ", 0 " + big + ")\n";
  EXPECT_TRUE(ParseInstanceText(text).ok());
}

TEST(IoTest, CanonicalFormExceedingTheLimitIsRejected) {
  // A 4096-char decimal literal is within the literal cap, but its
  // lowest-terms fraction ("1/10^4095") is nearly twice as long. The
  // parser must reject it up front — accepting it would make
  // WriteInstanceText emit a literal ParseInstanceText itself refuses,
  // breaking the round trip.
  std::string tiny = "." + std::string(4094, '0') + "1";  // 4096 chars.
  ASSERT_EQ(tiny.size(), 4096u);
  const std::string text =
      "A: (0 0, 1 0, 1 " + tiny + ", 0 " + tiny + ")\n";
  const Result<SpatialInstance> instance = ParseInstanceText(text);
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), StatusCode::kParseError);
  EXPECT_NE(instance.status().message().find("canonical form"),
            std::string::npos)
      << instance.status().ToString();
}

// Deterministic fuzz: random instances mixing integer, decimal, and
// fraction literals (redundant forms included — "2/4", trailing zeros)
// and names that stress the writer's formatting. The first Write output
// must re-parse, and a second Write must reproduce it byte for byte.
TEST(IoTest, RandomizedWriteParseRoundTripIsByteStable) {
  uint64_t rng_state = 0x5eed5eed5eedull;
  auto next = [&rng_state]() {
    // SplitMix64: deterministic across platforms, no <random> variance.
    uint64_t z = (rng_state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  // Awkward but valid names: spaces, parens, commas, internal '#',
  // slashes, dots, dashes. (Colons, control chars, leading '#', and
  // leading/trailing blanks are rejected by ValidateRegionName.)
  const std::vector<std::string> kNames = {
      "plain", "two words", "r(1)", "x,y", "w#2", "a/b", "dot.ted",
      "-dash", "()", "q__",
  };
  // A literal for a value in [base, base + 1), in a random surface form.
  auto literal = [&](int64_t base) -> std::string {
    switch (next() % 4) {
      case 0:  // Bare integer, sometimes with an explicit '+'.
        return (base >= 0 && next() % 2 ? "+" : "") + std::to_string(base);
      case 1: {  // Decimal with 1..6 digits, trailing zeros allowed.
        const size_t digits = 1 + next() % 6;
        std::string frac;
        for (size_t i = 0; i < digits; ++i) {
          frac.push_back(static_cast<char>('0' + next() % 10));
        }
        if (base < 0) {
          // "-2.5" means -(2.5): emit the magnitude after the sign.
          return "-" + std::to_string(-base - 1) + "." + frac;
        }
        return std::to_string(base) + "." + frac;
      }
      default: {  // Fraction (base*q + p)/q, not necessarily lowest terms.
        const int64_t q = 2 + static_cast<int64_t>(next() % 98);
        const int64_t p = static_cast<int64_t>(next() % q);
        const int64_t scale = next() % 2 ? 1 : 2 + (next() % 9);
        return std::to_string((base * q + p) * scale) + "/" +
               std::to_string(q * scale);
      }
    }
  };
  for (int round = 0; round < 50; ++round) {
    const size_t num_regions = 1 + next() % 4;
    std::string text = "# fuzz round " + std::to_string(round) + "\n";
    for (size_t r = 0; r < num_regions; ++r) {
      // Disjoint axis-aligned rectangles with x0 < x1, y0 < y1 by
      // construction; an offset keeps some coordinates negative.
      const int64_t bx = 3 * static_cast<int64_t>(r) - 4;
      const std::string x0 = literal(bx), x1 = literal(bx + 1);
      const std::string y0 = literal(-2), y1 = literal(0);
      text += kNames[(round + r) % kNames.size()] + ": (" + x0 + " " + y0 +
              ", " + x1 + " " + y0 + ", " + x1 + " " + y1 + ", " + x0 +
              " " + y1 + ")\n";
    }
    const Result<SpatialInstance> first = ParseInstanceText(text);
    ASSERT_TRUE(first.ok()) << "round " << round << ": "
                            << first.status().ToString() << "\n" << text;
    const std::string written = WriteInstanceText(*first);
    const Result<SpatialInstance> second = ParseInstanceText(written);
    ASSERT_TRUE(second.ok()) << "round " << round << ": "
                             << second.status().ToString() << "\n" << written;
    EXPECT_EQ(second->size(), first->size()) << "round " << round;
    EXPECT_EQ(WriteInstanceText(*second), written)
        << "round " << round << " is not byte-stable";
  }
}

TEST(IoTest, EmptyTextIsEmptyInstance) {
  Result<SpatialInstance> instance = ParseInstanceText("# nothing here\n");
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->empty());
  EXPECT_EQ(WriteInstanceText(*instance), "");
}

}  // namespace
}  // namespace topodb
