#include "src/region/io.h"

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

TEST(IoTest, WriteParseRoundTripPreservesExtents) {
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig6Instance(), Fig7bInstance(), NestedInstance()}) {
    std::string text = WriteInstanceText(instance);
    Result<SpatialInstance> back = ParseInstanceText(text);
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
    ASSERT_EQ(back->names(), instance.names());
    for (const auto& name : instance.names()) {
      const Region* original = *instance.ext(name);
      const Region* parsed = *back->ext(name);
      EXPECT_EQ(parsed->boundary().vertices(),
                original->boundary().vertices())
          << name;
    }
    // And therefore the invariants are identical.
    EXPECT_TRUE(*Isomorphic(*ComputeInvariant(instance),
                           *ComputeInvariant(*back)));
  }
}

TEST(IoTest, ParsesRationalAndDecimalCoordinates) {
  Result<SpatialInstance> instance = ParseInstanceText(
      "# a comment\n"
      "\n"
      "A: (0 0, 1/2 0, 1/2 1/3, 0 1/3)\n"
      "B: (2.5 0, 3 0, 3 -0.25, 2.5 -0.25)\n");
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->size(), 2u);
  const Region* a = *instance->ext("A");
  EXPECT_EQ(a->BoundingBox().max, Point(Rational(1, 2), Rational(1, 3)));
  const Region* b = *instance->ext("B");
  EXPECT_EQ(b->BoundingBox().min, Point(Rational(5, 2), Rational(-1, 4)));
  // Classes re-derived structurally.
  EXPECT_EQ(a->declared_class(), RegionClass::kRect);
}

TEST(IoTest, WriterEmitsParsableHeaderlessText) {
  std::string text = WriteInstanceText(Fig1cInstance());
  EXPECT_NE(text.find("A: ("), std::string::npos);
  EXPECT_NE(text.find("B: ("), std::string::npos);
}

TEST(IoTest, ParseErrorsAreLineNumbered) {
  Result<SpatialInstance> missing_colon = ParseInstanceText("A (0 0, 1 0)\n");
  EXPECT_FALSE(missing_colon.ok());
  EXPECT_NE(missing_colon.status().message().find("line 1"),
            std::string::npos);
  Result<SpatialInstance> bad_coord =
      ParseInstanceText("A: (0 0, 1 0, x 1)\n");
  EXPECT_FALSE(bad_coord.ok());
  Result<SpatialInstance> bad_vertex =
      ParseInstanceText("ok: (0 0, 4 0, 4 4)\nB: (0 0 7, 1 0, 1 1)\n");
  EXPECT_FALSE(bad_vertex.ok());
  EXPECT_NE(bad_vertex.status().message().find("line 2"), std::string::npos);
  Result<SpatialInstance> no_parens = ParseInstanceText("A: 0 0, 1 0, 1 1\n");
  EXPECT_FALSE(no_parens.ok());
  Result<SpatialInstance> empty_name = ParseInstanceText(": (0 0, 1 0, 1 1)\n");
  EXPECT_FALSE(empty_name.ok());
}

TEST(IoTest, RejectsNamesTheWriterCouldNotRoundTrip) {
  // A tab inside the name survives Strip but would not round-trip; the
  // parser reports it as an invalid name with its line number.
  Result<SpatialInstance> tabbed =
      ParseInstanceText("ok: (0 0, 4 0, 4 4)\na\tb: (0 0, 4 0, 4 4)\n");
  EXPECT_FALSE(tabbed.ok());
  EXPECT_NE(tabbed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(tabbed.status().message().find("invalid region name"),
            std::string::npos);
  // AddRegion refuses the names WriteInstanceText cannot represent, so a
  // serializable instance can never be constructed with them.
  SpatialInstance instance;
  EXPECT_FALSE(
      instance.AddRegion("a:b", *Region::MakeRect(Point(0, 0), Point(1, 1)))
          .ok());
  EXPECT_FALSE(
      instance.AddRegion("a\nb", *Region::MakeRect(Point(0, 0), Point(1, 1)))
          .ok());
}

TEST(IoTest, RejectsInvalidPolygons) {
  // Bowtie.
  EXPECT_FALSE(ParseInstanceText("A: (0 0, 2 2, 2 0, 0 2)\n").ok());
  // Too few vertices.
  EXPECT_FALSE(ParseInstanceText("A: (0 0, 1 0)\n").ok());
  // Duplicate names.
  EXPECT_FALSE(
      ParseInstanceText("A: (0 0, 4 0, 4 4)\nA: (8 8, 9 8, 9 9)\n").ok());
}

TEST(IoTest, EmptyTextIsEmptyInstance) {
  Result<SpatialInstance> instance = ParseInstanceText("# nothing here\n");
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->empty());
  EXPECT_EQ(WriteInstanceText(*instance), "");
}

}  // namespace
}  // namespace topodb
