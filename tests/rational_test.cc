#include "src/base/rational.h"

#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace topodb {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_TRUE(zero.is_integer());
}

TEST(RationalTest, ReducesToLowestTerms) {
  Rational r(6, 4);
  EXPECT_EQ(r.num().ToString(), "3");
  EXPECT_EQ(r.den().ToString(), "2");
  EXPECT_EQ(r.ToString(), "3/2");
}

TEST(RationalTest, DenominatorAlwaysPositive) {
  Rational r(1, -2);
  EXPECT_EQ(r.ToString(), "-1/2");
  EXPECT_TRUE(r.den().is_positive());
  Rational s(-3, -6);
  EXPECT_EQ(s.ToString(), "1/2");
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational r(0, 17);
  EXPECT_EQ(r.den().ToString(), "1");
  EXPECT_TRUE(r.is_zero());
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, ComparisonCrossesDenominators) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 3), Rational(2));
  EXPECT_LT(Rational(-5), Rational(1, 1000000));
}

TEST(RationalTest, ParseForms) {
  Rational r;
  ASSERT_TRUE(Rational::FromString("42", &r));
  EXPECT_EQ(r, Rational(42));
  ASSERT_TRUE(Rational::FromString("-7/14", &r));
  EXPECT_EQ(r, Rational(-1, 2));
  ASSERT_TRUE(Rational::FromString("1.25", &r));
  EXPECT_EQ(r, Rational(5, 4));
  ASSERT_TRUE(Rational::FromString("-0.5", &r));
  EXPECT_EQ(r, Rational(-1, 2));
  ASSERT_TRUE(Rational::FromString(".5", &r));
  EXPECT_EQ(r, Rational(1, 2));
}

TEST(RationalTest, ParseRejectsGarbage) {
  Rational r;
  EXPECT_FALSE(Rational::FromString("", &r));
  EXPECT_FALSE(Rational::FromString("1/0", &r));
  EXPECT_FALSE(Rational::FromString("1/", &r));
  EXPECT_FALSE(Rational::FromString("a/2", &r));
  EXPECT_FALSE(Rational::FromString("1.", &r));
  EXPECT_FALSE(Rational::FromString("1.2.3", &r));
}

TEST(RationalTest, MinMaxAbs) {
  Rational a(-3, 2);
  Rational b(1, 4);
  EXPECT_EQ(Rational::Min(a, b), a);
  EXPECT_EQ(Rational::Max(a, b), b);
  EXPECT_EQ(a.Abs(), Rational(3, 2));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).ToDouble(), -0.25);
  EXPECT_NEAR(Rational(1, 3).ToDouble(), 1.0 / 3.0, 1e-15);
}

TEST(RationalTest, StreamOutput) {
  std::ostringstream os;
  os << Rational(22, 7);
  EXPECT_EQ(os.str(), "22/7");
}

TEST(RationalTest, FieldAxiomsRandomized) {
  std::mt19937_64 rng(101);
  auto random_rational = [&rng]() {
    int64_t num = static_cast<int64_t>(rng() % 2001) - 1000;
    int64_t den = static_cast<int64_t>(rng() % 1000) + 1;
    return Rational(num, den);
  };
  for (int iter = 0; iter < 300; ++iter) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a / a, Rational(1));
      EXPECT_EQ((b / a) * a, b);
    }
  }
}

TEST(RationalTest, OrderingCompatibleWithArithmeticRandomized) {
  std::mt19937_64 rng(555);
  for (int iter = 0; iter < 300; ++iter) {
    Rational a(static_cast<int64_t>(rng() % 2001) - 1000,
               static_cast<int64_t>(rng() % 997) + 1);
    Rational b(static_cast<int64_t>(rng() % 2001) - 1000,
               static_cast<int64_t>(rng() % 997) + 1);
    if (a < b) {
      EXPECT_GT(b - a, Rational(0));
      Rational mid = (a + b) / Rational(2);
      EXPECT_LT(a, mid);
      EXPECT_LT(mid, b);
    }
  }
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
}

}  // namespace
}  // namespace topodb
