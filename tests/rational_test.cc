#include "src/base/rational.h"

#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace topodb {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_TRUE(zero.is_integer());
}

TEST(RationalTest, ReducesToLowestTerms) {
  Rational r(6, 4);
  EXPECT_EQ(r.num().ToString(), "3");
  EXPECT_EQ(r.den().ToString(), "2");
  EXPECT_EQ(r.ToString(), "3/2");
}

TEST(RationalTest, DenominatorAlwaysPositive) {
  Rational r(1, -2);
  EXPECT_EQ(r.ToString(), "-1/2");
  EXPECT_TRUE(r.den().is_positive());
  Rational s(-3, -6);
  EXPECT_EQ(s.ToString(), "1/2");
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational r(0, 17);
  EXPECT_EQ(r.den().ToString(), "1");
  EXPECT_TRUE(r.is_zero());
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, ComparisonCrossesDenominators) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 3), Rational(2));
  EXPECT_LT(Rational(-5), Rational(1, 1000000));
}

TEST(RationalTest, ParseForms) {
  Rational r;
  ASSERT_TRUE(Rational::FromString("42", &r));
  EXPECT_EQ(r, Rational(42));
  ASSERT_TRUE(Rational::FromString("-7/14", &r));
  EXPECT_EQ(r, Rational(-1, 2));
  ASSERT_TRUE(Rational::FromString("1.25", &r));
  EXPECT_EQ(r, Rational(5, 4));
  ASSERT_TRUE(Rational::FromString("-0.5", &r));
  EXPECT_EQ(r, Rational(-1, 2));
  ASSERT_TRUE(Rational::FromString(".5", &r));
  EXPECT_EQ(r, Rational(1, 2));
}

TEST(RationalTest, ParseRejectsGarbage) {
  Rational r;
  EXPECT_FALSE(Rational::FromString("", &r));
  EXPECT_FALSE(Rational::FromString("1/0", &r));
  EXPECT_FALSE(Rational::FromString("1/", &r));
  EXPECT_FALSE(Rational::FromString("a/2", &r));
  EXPECT_FALSE(Rational::FromString("1.", &r));
  EXPECT_FALSE(Rational::FromString("1.2.3", &r));
}

TEST(RationalTest, MinMaxAbs) {
  Rational a(-3, 2);
  Rational b(1, 4);
  EXPECT_EQ(Rational::Min(a, b), a);
  EXPECT_EQ(Rational::Max(a, b), b);
  EXPECT_EQ(a.Abs(), Rational(3, 2));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).ToDouble(), -0.25);
  EXPECT_NEAR(Rational(1, 3).ToDouble(), 1.0 / 3.0, 1e-15);
}

TEST(RationalTest, StreamOutput) {
  std::ostringstream os;
  os << Rational(22, 7);
  EXPECT_EQ(os.str(), "22/7");
}

TEST(RationalTest, FieldAxiomsRandomized) {
  std::mt19937_64 rng(101);
  auto random_rational = [&rng]() {
    int64_t num = static_cast<int64_t>(rng() % 2001) - 1000;
    int64_t den = static_cast<int64_t>(rng() % 1000) + 1;
    return Rational(num, den);
  };
  for (int iter = 0; iter < 300; ++iter) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a / a, Rational(1));
      EXPECT_EQ((b / a) * a, b);
    }
  }
}

TEST(RationalTest, OrderingCompatibleWithArithmeticRandomized) {
  std::mt19937_64 rng(555);
  for (int iter = 0; iter < 300; ++iter) {
    Rational a(static_cast<int64_t>(rng() % 2001) - 1000,
               static_cast<int64_t>(rng() % 997) + 1);
    Rational b(static_cast<int64_t>(rng() % 2001) - 1000,
               static_cast<int64_t>(rng() % 997) + 1);
    if (a < b) {
      EXPECT_GT(b - a, Rational(0));
      Rational mid = (a + b) / Rational(2);
      EXPECT_LT(a, mid);
      EXPECT_LT(mid, b);
    }
  }
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
}

// Table-driven exercise of the unified FromString grammar: one optional
// leading sign for the whole value, then integer | numerator/denominator |
// decimal, with every digit run validated by the same rule. The reject
// column is the contract — each entry names a string some lenient parser
// (strtod, atoi, stringstream) would have accepted.
TEST(RationalTest, ParseGrammarTableAccepts) {
  struct Case {
    const char* text;
    const char* canonical;  // Expected ToString() of the parsed value.
  };
  const Case kAccepts[] = {
      {"0", "0"},         {"007", "7"},        {"+42", "42"},
      {"-42", "-42"},     {"12345678901234567890123", "12345678901234567890123"},
      {"0/5", "0"},       {"3/6", "1/2"},      {"+3/6", "1/2"},
      {"-3/6", "-1/2"},   {"22/7", "22/7"},    {"08/04", "2"},
      {".5", "1/2"},      {"+.5", "1/2"},      {"-.5", "-1/2"},
      {"0.50", "1/2"},    {"2.75", "11/4"},    {"-0.125", "-1/8"},
      {"000.250", "1/4"}, {"10.0", "10"},
  };
  for (const Case& c : kAccepts) {
    Rational r(99);
    EXPECT_TRUE(Rational::FromString(c.text, &r)) << '"' << c.text << '"';
    EXPECT_EQ(r.ToString(), c.canonical) << '"' << c.text << '"';
  }
}

TEST(RationalTest, ParseGrammarTableRejects) {
  const char* kRejects[] = {
      // Empty-ish.
      "", " ", "-", "+", ".", "-.", "+.",
      // Missing digit runs around separators.
      "1.", "1/", "/2", "./2", "5.5.5", "1.2.3",
      // Signs anywhere but the front.
      "1/-2", "1/+2", "-1/-2", "1.-5", "--1", "+-1", "1-",
      // Division by zero is a parse error, not a crash later.
      "1/0", "-1/0", "0/0", "1/00",
      // No exponents, radix prefixes, separators, or whitespace.
      "1e3", "1E3", "0x10", "1_000", "1,5", " 1", "1 ", "1 /2", "1/ 2",
      // Non-digit garbage.
      "a/2", "1/b", "abc", "½", "1.5f", "nan", "inf",
  };
  for (const char* text : kRejects) {
    Rational r(99);
    EXPECT_FALSE(Rational::FromString(text, &r)) << '"' << text << '"';
    // A failed parse must not clobber the output.
    EXPECT_EQ(r, Rational(99)) << '"' << text << '"';
  }
}

// Differential check of the Compare fast paths (equal-denominator shortcut
// and the certified-double stage) against the filter-disabled textbook
// cross-multiplication, on operand families chosen to land in each stage:
// near-equal values a half-ulp apart, equal denominators, and bit-lengths
// beyond the 512-bit static cap.
TEST(RationalTest, CompareFastPathsMatchTextbookComparison) {
  std::mt19937_64 rng(20260809);
  auto compare_both_ways = [](const Rational& a, const Rational& b) {
    SetRationalCompareFilterEnabled(false);
    const int expected = a.Compare(b);
    SetRationalCompareFilterEnabled(true);
    EXPECT_EQ(a.Compare(b), expected)
        << a.ToString() << " vs " << b.ToString();
  };
  // Equal denominators, including sign boundaries.
  for (int64_t n = -5; n <= 5; ++n) {
    compare_both_ways(Rational(n, 7), Rational(n + 1, 7));
    compare_both_ways(Rational(n, 7), Rational(n, 7));
  }
  // Random pairs across magnitudes (double stage decides most of these).
  for (int iter = 0; iter < 500; ++iter) {
    Rational a(static_cast<int64_t>(rng()) >> (rng() % 40),
               (static_cast<int64_t>(rng() % 1'000'000)) + 1);
    Rational b(static_cast<int64_t>(rng()) >> (rng() % 40),
               (static_cast<int64_t>(rng() % 1'000'000)) + 1);
    compare_both_ways(a, b);
    // Near-equal: separated by 1/(den_a * den_b * 2^20) — far below the
    // double stage's tolerance, forcing the exact fallback.
    const Rational eps(BigInt(1),
                       (a.den() * b.den()).ShiftLeft(20));
    compare_both_ways(a, a + eps);
    compare_both_ways(a + eps, a);
    compare_both_ways(a, a - eps);
  }
  // Operands beyond the 512-bit cap must skip the double stage and still
  // order correctly.
  BigInt big(1);
  for (int i = 0; i < 600; ++i) big = big * BigInt(2);
  const Rational wide_a(big + BigInt(1), BigInt(3));
  const Rational wide_b(big, BigInt(3));
  const Rational tiny(BigInt(7), big);
  compare_both_ways(wide_a, wide_b);
  compare_both_ways(wide_b, wide_a);
  compare_both_ways(tiny, Rational(0));
  compare_both_ways(tiny, tiny);
}

// Same differential for the arithmetic fast path: the equal-denominator
// shortcut in operator+/- must produce values identical (not just equal —
// same reduced num/den) to the textbook cross-product formula.
TEST(RationalTest, ArithmeticFastPathMatchesTextbookFormula) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    const int64_t den = static_cast<int64_t>(rng() % 1'000) + 1;
    const Rational a(static_cast<int64_t>(rng() % 20'001) - 10'000, den);
    const Rational b(static_cast<int64_t>(rng() % 20'001) - 10'000, den);
    SetRationalCompareFilterEnabled(false);
    const Rational sum_textbook = a + b;
    const Rational diff_textbook = a - b;
    SetRationalCompareFilterEnabled(true);
    const Rational sum_fast = a + b;
    const Rational diff_fast = a - b;
    EXPECT_EQ(sum_fast.num().ToString(), sum_textbook.num().ToString());
    EXPECT_EQ(sum_fast.den().ToString(), sum_textbook.den().ToString());
    EXPECT_EQ(diff_fast.num().ToString(), diff_textbook.num().ToString());
    EXPECT_EQ(diff_fast.den().ToString(), diff_textbook.den().ToString());
  }
}

}  // namespace
}  // namespace topodb
