#include "src/invariant/canonical.h"

#include <string>

#include <gtest/gtest.h>

#include "src/invariant/data.h"
#include "src/region/fixtures.h"
#include "src/region/transform.h"

namespace topodb {
namespace {

InvariantData Inv(const SpatialInstance& instance) {
  Result<InvariantData> data = ComputeInvariant(instance);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

TEST(InvariantDataTest, FromComplexCounts) {
  InvariantData data = Inv(Fig1cInstance());
  EXPECT_EQ(data.vertices.size(), 2u);
  EXPECT_EQ(data.edges.size(), 4u);
  EXPECT_EQ(data.faces.size(), 4u);
  EXPECT_TRUE(data.CheckWellFormed().ok());
  EXPECT_EQ(data.ComponentCount(), 1);
}

TEST(InvariantDataTest, CyclesPartitionDarts) {
  InvariantData data = Inv(Fig1dInstance());
  std::vector<int> cycle_of_dart, reps;
  data.ComputeCycles(&cycle_of_dart, &reps);
  EXPECT_EQ(cycle_of_dart.size(), 16u);  // 8 edges.
  for (int c : cycle_of_dart) EXPECT_GE(c, 0);
  // Connected instance: #cycles == #faces.
  EXPECT_EQ(reps.size(), data.faces.size());
}

TEST(InvariantDataTest, WellFormedRejectsCorruption) {
  InvariantData data = Inv(Fig1cInstance());
  {
    InvariantData bad = data;
    bad.next_ccw[0] = bad.next_ccw[1];  // Not a bijection.
    EXPECT_FALSE(bad.CheckWellFormed().ok());
  }
  {
    InvariantData bad = data;
    bad.edges[0].v1 = 99;
    EXPECT_FALSE(bad.CheckWellFormed().ok());
  }
  {
    InvariantData bad = data;
    bad.exterior_face = 99;
    EXPECT_FALSE(bad.CheckWellFormed().ok());
  }
  {
    InvariantData bad = data;
    bad.vertices[0].label.pop_back();
    EXPECT_FALSE(bad.CheckWellFormed().ok());
  }
}

TEST(CanonicalTest, HeaderEscapingKeepsNameListsDistinct) {
  // Regression: the header used to join names with bare ',' so the region
  // name lists {"a,b"} and {"a","b"} produced identical canonical strings
  // and non-isomorphic instances compared equal.
  InvariantData one_name;
  one_name.region_names = {"a,b"};
  InvariantData two_names;
  two_names.region_names = {"a", "b"};
  Result<std::string> ca = CanonicalInvariantString(one_name);
  Result<std::string> cb = CanonicalInvariantString(two_names);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_NE(*ca, *cb);
  ASSERT_TRUE(Isomorphic(one_name, two_names).ok());
  EXPECT_FALSE(*Isomorphic(one_name, two_names));
  // Ordinary names are unchanged by the escaping.
  EXPECT_EQ(EscapeRegionName("R001"), "R001");
  EXPECT_EQ(EscapeRegionName("a,b"), "a\\,b");
  EXPECT_EQ(EscapeRegionName("a\\b"), "a\\\\b");
}

TEST(CanonicalTest, MalformedDataReturnsErrorNotCrash) {
  InvariantData bad = Inv(Fig1cInstance());
  bad.next_ccw.pop_back();  // Dart table size mismatch.
  EXPECT_FALSE(CanonicalInvariantString(bad).ok());
  Result<bool> iso = Isomorphic(bad, bad);
  EXPECT_FALSE(iso.ok());
  Result<bool> isotopy = IsotopyEquivalent(bad, Inv(Fig1cInstance()));
  EXPECT_FALSE(isotopy.ok());
  // Order of arguments does not matter for error propagation.
  EXPECT_FALSE(Isomorphic(Inv(Fig1cInstance()), bad).ok());
}

TEST(CanonicalTest, DeterministicAndSelfEqual) {
  InvariantData data = Inv(Fig1aInstance());
  Result<std::string> c1 = CanonicalInvariantString(data);
  Result<std::string> c2 = CanonicalInvariantString(data);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(*c1, *c2);
  EXPECT_TRUE(*Isomorphic(data, data));
}

TEST(CanonicalTest, Fig1aVsFig1bNotEquivalent) {
  // The paper's headline example: 4-intersection equivalent instances that
  // are not topologically equivalent.
  EXPECT_FALSE(*Isomorphic(Inv(Fig1aInstance()), Inv(Fig1bInstance())));
}

TEST(CanonicalTest, Fig1cVsFig1dNotEquivalent) {
  EXPECT_FALSE(*Isomorphic(Inv(Fig1cInstance()), Inv(Fig1dInstance())));
}

TEST(CanonicalTest, InvariantUnderAffineMaps) {
  SpatialInstance base = Fig1cInstance();
  InvariantData original = Inv(base);
  // Translation, scaling, shear: all homeomorphisms.
  for (const AffineTransform& t :
       {AffineTransform::Translation(Rational(7), Rational(-3)),
        AffineTransform::Scale(Rational(3), Rational(1, 2)),
        *AffineTransform::Make(1, 1, 0, 0, 1, 0),
        *AffineTransform::Make(2, 1, 5, 1, 1, -4)}) {
    Result<SpatialInstance> image = t.ApplyToInstance(base);
    ASSERT_TRUE(image.ok());
    EXPECT_TRUE(*Isomorphic(original, Inv(*image)));
  }
}

TEST(CanonicalTest, InvariantUnderReflection) {
  // Homeomorphisms include orientation-reversing maps; a mirrored instance
  // is topologically equivalent.
  for (const SpatialInstance& base :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig7bInstance()}) {
    Result<SpatialInstance> mirrored =
        AffineTransform::MirrorX().ApplyToInstance(base);
    ASSERT_TRUE(mirrored.ok());
    EXPECT_TRUE(*Isomorphic(Inv(base), Inv(*mirrored)));
  }
}

TEST(CanonicalTest, InvariantUnderTwoPieceLinear) {
  AffineTransform left = AffineTransform::Identity();
  AffineTransform right = *AffineTransform::Make(3, 0, -10, 0, 1, 0);
  TwoPieceLinearTransform t =
      *TwoPieceLinearTransform::Make(Rational(5), left, right);
  SpatialInstance base = Fig1dInstance();
  Result<SpatialInstance> image = t.ApplyToInstance(base);
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(*Isomorphic(Inv(base), Inv(*image)));
}

TEST(CanonicalTest, Fig7aOrientationConsistencyMatters) {
  // I and I' differ only in the mirroring of one of the two components:
  // each component is chiral, so no global homeomorphism maps I to I'.
  InvariantData i = Inv(Fig7aInstance());
  InvariantData ip = Inv(Fig7aPrimeInstance());
  EXPECT_FALSE(*Isomorphic(i, ip));
  // Mirroring the whole instance is fine.
  Result<SpatialInstance> mirrored =
      AffineTransform::MirrorX().ApplyToInstance(Fig7aInstance());
  ASSERT_TRUE(mirrored.ok());
  EXPECT_TRUE(*Isomorphic(i, Inv(*mirrored)));
}

TEST(CanonicalTest, Fig7bCyclicOrderMatters) {
  // Four tangent diamonds: (A, C, B, D) around the origin vs (A, B, C, D).
  InvariantData i = Inv(Fig7bInstance());
  InvariantData ip = Inv(Fig7bPrimeInstance());
  EXPECT_FALSE(*Isomorphic(i, ip));
}

int PocketFace(const InvariantData& data, const std::string& label) {
  int pocket = -1;
  for (size_t f = 0; f < data.faces.size(); ++f) {
    if (!data.faces[f].unbounded && LabelString(data.faces[f].label) == label) {
      pocket = static_cast<int>(f);
    }
  }
  return pocket;
}

TEST(CanonicalTest, Fig1dPocketEversionIsSymmetric) {
  // The plain bar+U instance admits an orientation-reversing automorphism
  // exchanging its two all-exterior faces (verified by hand on the vertex
  // rotations), so everting its pocket yields an isomorphic invariant.
  // This is why Fig 6 needs an asymmetric instance; see the next test.
  InvariantData data = Inv(Fig1dInstance());
  int pocket = PocketFace(data, "--");
  ASSERT_NE(pocket, -1);
  Result<InvariantData> everted = data.WithExteriorFace(pocket);
  ASSERT_TRUE(everted.ok());
  EXPECT_TRUE(*Isomorphic(data, *everted));
}

TEST(CanonicalTest, Fig6ExteriorFaceMatters) {
  // Fig 6: structures identical except for the choice of exterior cell are
  // not topologically equivalent. Fig6Instance breaks the bar+U symmetry
  // with a third region on the outer arc.
  InvariantData data = Inv(Fig6Instance());
  int pocket = PocketFace(data, "---");
  ASSERT_NE(pocket, -1);
  Result<InvariantData> everted = data.WithExteriorFace(pocket);
  ASSERT_TRUE(everted.ok());
  EXPECT_FALSE(*Isomorphic(data, *everted));
  Result<bool> weak = IsomorphicIgnoringExterior(data, *everted);
  ASSERT_TRUE(weak.ok());
  EXPECT_TRUE(*weak);
}

TEST(CanonicalTest, ContainmentTreeDistinguishesPocketFromOutside) {
  // Fig 1d plus a small disc D: inside the pocket vs far outside. All cell
  // labels match; only the embedded-in tree differs.
  SpatialInstance in_pocket = Fig1dInstance();
  ASSERT_TRUE(in_pocket
                  .AddRegion("D", *Region::MakeRect(Point(6, Rational(13, 2)),
                                                    Point(8, Rational(15, 2))))
                  .ok());
  SpatialInstance outside = Fig1dInstance();
  ASSERT_TRUE(outside
                  .AddRegion("D", *Region::MakeRect(Point(30, 30),
                                                    Point(32, 32)))
                  .ok());
  InvariantData a = Inv(in_pocket);
  InvariantData b = Inv(outside);
  // Same cell counts; different invariants.
  EXPECT_EQ(a.vertices.size(), b.vertices.size());
  EXPECT_EQ(a.edges.size(), b.edges.size());
  EXPECT_EQ(a.faces.size(), b.faces.size());
  EXPECT_FALSE(*Isomorphic(a, b));
}

TEST(CanonicalTest, NestedVsSiblingComponents) {
  EXPECT_FALSE(*Isomorphic(Inv(NestedInstance()), Inv(DisjointPairInstance())));
}

TEST(CanonicalTest, NamesMatter) {
  // Same geometry, different names: not equivalent (isomorphisms are the
  // identity on names).
  SpatialInstance a;
  ASSERT_TRUE(a.AddRegion("A", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  SpatialInstance z;
  ASSERT_TRUE(z.AddRegion("Z", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  EXPECT_FALSE(*Isomorphic(Inv(a), Inv(z)));
}

TEST(CanonicalTest, NameSwapOnAsymmetricInstance) {
  // A contains B vs B contains A: same shape, names swapped.
  SpatialInstance ab;
  ASSERT_TRUE(ab.AddRegion("A", *Region::MakeRect(Point(0, 0), Point(10, 10)))
                  .ok());
  ASSERT_TRUE(ab.AddRegion("B", *Region::MakeRect(Point(3, 3), Point(7, 7)))
                  .ok());
  SpatialInstance ba;
  ASSERT_TRUE(ba.AddRegion("B", *Region::MakeRect(Point(0, 0), Point(10, 10)))
                  .ok());
  ASSERT_TRUE(ba.AddRegion("A", *Region::MakeRect(Point(3, 3), Point(7, 7)))
                  .ok());
  EXPECT_FALSE(*Isomorphic(Inv(ab), Inv(ba)));
}

TEST(CanonicalTest, SingleRegionDegenerateEquivalence) {
  // Any two single-region instances (same name) are homeomorphic: square,
  // translated square, triangle.
  InvariantData square = Inv(SingleRegionInstance());
  SpatialInstance tri;
  ASSERT_TRUE(tri.AddRegion("A", *Region::MakePoly({Point(100, 7), Point(104, 7),
                                                    Point(102, 11)}))
                  .ok());
  EXPECT_TRUE(*Isomorphic(square, Inv(tri)));
}

TEST(CanonicalTest, EmptyInstances) {
  InvariantData a = Inv(SpatialInstance());
  InvariantData b = Inv(SpatialInstance());
  EXPECT_TRUE(*Isomorphic(a, b));
}

TEST(CanonicalTest, WrapperCachesCanonical) {
  Result<TopologicalInvariant> inv =
      TopologicalInvariant::Compute(Fig1cInstance());
  ASSERT_TRUE(inv.ok());
  Result<TopologicalInvariant> inv2 =
      TopologicalInvariant::Compute(Fig1cInstance());
  ASSERT_TRUE(inv2.ok());
  EXPECT_TRUE(inv->EquivalentTo(*inv2));
  EXPECT_FALSE(inv->canonical().empty());
}

TEST(IsotopyTest, ChiralInstanceDiffersFromMirror) {
  // [KPV95] isotopy level: the chiral bar-triangle instance is
  // H-equivalent to its mirror but not isotopy-equivalent.
  SpatialInstance chiral = Fig1bInstance();
  Result<SpatialInstance> mirrored =
      AffineTransform::MirrorX().ApplyToInstance(chiral);
  ASSERT_TRUE(mirrored.ok());
  InvariantData a = Inv(chiral);
  InvariantData b = Inv(*mirrored);
  EXPECT_TRUE(*Isomorphic(a, b));
  EXPECT_FALSE(*IsotopyEquivalent(a, b));
  // Orientation-preserving maps preserve isotopy equivalence.
  AffineTransform rotation = *AffineTransform::Make(0, -1, 0, 1, 0, 0);
  Result<SpatialInstance> rotated = rotation.ApplyToInstance(chiral);
  ASSERT_TRUE(rotated.ok());
  EXPECT_TRUE(*IsotopyEquivalent(a, Inv(*rotated)));
}

TEST(IsotopyTest, AchiralInstanceEqualsItsMirror) {
  // Two overlapping axis-aligned rectangles have a reflective symmetry:
  // isotopy-equivalent to the mirror image.
  SpatialInstance base = Fig1cInstance();
  Result<SpatialInstance> mirrored =
      AffineTransform::MirrorX().ApplyToInstance(base);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_TRUE(*IsotopyEquivalent(Inv(base), Inv(*mirrored)));
}

TEST(CanonicalTest, FourIntersectionEquivalentPairsSeparated) {
  // The full Fig 1 statement: {a,b} and {c,d} are 4-intersection
  // equivalent pairs separated by the invariant. (The 4-intersection
  // equivalence itself is asserted in fourint tests.)
  EXPECT_FALSE(*Isomorphic(Inv(Fig1aInstance()), Inv(Fig1bInstance())));
  EXPECT_FALSE(*Isomorphic(Inv(Fig1cInstance()), Inv(Fig1dInstance())));
  // Sanity: each instance equivalent to a perturbed copy of itself.
  AffineTransform t = *AffineTransform::Make(1, 0, 3, Rational(1, 7), 1, 0);
  for (const SpatialInstance& base :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance()}) {
    Result<SpatialInstance> image = t.ApplyToInstance(base);
    ASSERT_TRUE(image.ok());
    EXPECT_TRUE(*Isomorphic(Inv(base), Inv(*image)));
  }
}

}  // namespace
}  // namespace topodb
