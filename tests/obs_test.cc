// src/obs: metrics primitives, registry export formats, and the
// Deadline/CancelToken/StopSignal cancellation plumbing.

#include <chrono>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/deadline.h"
#include "src/obs/metrics.h"

namespace topodb {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(7);
  g.Set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ExactAggregatesApproximateQuantiles) {
  Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 1000.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1015.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 203.0);
  // Quantiles interpolate within a bucket: within a factor of 2,
  // monotone, clamped to [min, max].
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 4.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, 1000.0);
}

TEST(HistogramTest, QuantileInterpolationIsDeterministic) {
  // {1, 2, 4, 8, 1000} land in buckets [0,1], (1,2], (2,4], (4,8],
  // (512,1024]. Rank 0.5*5 = 2.5 falls halfway into the (2,4] bucket, so
  // p50 interpolates to exactly 3; rank 0.99*5 = 4.95 is 95% into the
  // (512,1024] bucket: 512 + 0.95*512 = 998.4. Exact equality is the
  // point — the estimate depends only on the recorded multiset.
  Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 1000.0}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 998.4);
  EXPECT_DOUBLE_EQ(h.P50(), h.Quantile(0.50));
  EXPECT_DOUBLE_EQ(h.P95(), h.Quantile(0.95));
  EXPECT_DOUBLE_EQ(h.P99(), h.Quantile(0.99));
  // Insertion order cannot matter: recording the reverse multiset gives
  // bit-identical quantiles.
  Histogram reversed;
  for (double v : {1000.0, 8.0, 4.0, 2.0, 1.0}) reversed.Record(v);
  EXPECT_DOUBLE_EQ(reversed.Quantile(0.5), h.Quantile(0.5));
  EXPECT_DOUBLE_EQ(reversed.P95(), h.P95());
}

TEST(HistogramTest, QuantileEdgeRanksClampToMinAndMax) {
  Histogram h;
  for (double v : {3.0, 5.0, 7.0}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 7.0);
  // Out-of-range q is clamped, not rejected.
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), 7.0);
}

TEST(HistogramTest, QuantileNonFiniteArguments) {
  Histogram h;
  for (double v : {3.0, 5.0, 7.0}) h.Record(v);
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Infinities clamp like any out-of-range rank; NaN is documented to act
  // as q == 0. None of them may leak NaN or trip UB inside std::clamp.
  EXPECT_DOUBLE_EQ(h.Quantile(-inf), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(inf), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(nan), 3.0);
  // The empty-histogram contract holds for extreme q too.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(nan), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(inf), 0.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(RegistryTest, CreateOnFirstUseReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x.count");
  Counter* b = registry.counter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.counter("x.count")->value(), 3u);
  EXPECT_NE(registry.counter("y.count"), a);
}

TEST(RegistryTest, ExportTextListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("pipeline.items")->Add(12);
  registry.gauge("cache.entries")->Set(3);
  registry.histogram("stage_us")->Record(10.0);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("counter pipeline.items 12"), std::string::npos);
  EXPECT_NE(text.find("gauge cache.entries 3"), std::string::npos);
  EXPECT_NE(text.find("histogram stage_us count=1"), std::string::npos);
}

TEST(RegistryTest, ExportJsonHasSchemaAndSections) {
  MetricsRegistry registry;
  registry.counter("a")->Add(1);
  registry.gauge("b")->Set(2);
  registry.histogram("c")->Record(3.0);
  const std::string json = registry.ExportJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"schema\": \"topodb.metrics.v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // The v2 addition: every histogram carries a p95 estimate.
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

TEST(RegistryTest, ExportJsonEmptyRegistryIsWellFormed) {
  MetricsRegistry registry;
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

TEST(NullSafeHelpersTest, NullRegistryAndSinksAreNoOps) {
  EXPECT_EQ(RegistryCounter(nullptr, "x"), nullptr);
  EXPECT_EQ(RegistryGauge(nullptr, "x"), nullptr);
  EXPECT_EQ(RegistryHistogram(nullptr, "x"), nullptr);
  CounterAdd(nullptr, 5);  // Must not crash.
  GaugeSet(nullptr, 5);
  HistogramRecord(nullptr, 5.0);
  { ScopedTimer timer(nullptr); }
}

TEST(ScopedTimerTest, RecordsOneSampleInMicroseconds) {
  Histogram h;
  { ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  EXPECT_LT(h.max(), 1e6);  // Under a second, expressed in microseconds.
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.HasExpired());
  EXPECT_FALSE(Deadline::Infinite().HasExpired());
}

TEST(DeadlineTest, ExpiredFactoryIsDeterministicallyPast) {
  EXPECT_TRUE(Deadline::Expired().HasExpired());
  EXPECT_FALSE(Deadline::Expired().is_infinite());
}

TEST(DeadlineTest, GenerousBudgetHasNotExpired) {
  EXPECT_FALSE(Deadline::AfterMillis(3'600'000).HasExpired());
  EXPECT_FALSE(Deadline::After(std::chrono::hours(1)).HasExpired());
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(StopSignalTest, UnarmedNeverFails) {
  StopSignal stop;
  EXPECT_FALSE(stop.armed());
  EXPECT_TRUE(stop.Check().ok());
}

TEST(StopSignalTest, ExpiredDeadlineReportsDeadlineExceeded) {
  StopSignal stop(Deadline::Expired(), nullptr);
  EXPECT_TRUE(stop.armed());
  EXPECT_EQ(stop.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(StopSignalTest, CancelledTokenReportsDeadlineExceeded) {
  CancelToken token;
  StopSignal stop(Deadline::Infinite(), &token);
  EXPECT_TRUE(stop.armed());
  EXPECT_TRUE(stop.Check().ok());
  token.Cancel();
  EXPECT_EQ(stop.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(StopSignalTest, GenerousDeadlineStaysOk) {
  StopSignal stop(Deadline::AfterMillis(3'600'000), nullptr);
  EXPECT_TRUE(stop.armed());
  EXPECT_TRUE(stop.Check().ok());
}

}  // namespace
}  // namespace topodb
