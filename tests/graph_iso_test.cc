#include "src/invariant/graph_iso.h"

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/region/fixtures.h"
#include "src/region/transform.h"

namespace topodb {
namespace {

InvariantData Inv(const SpatialInstance& instance) {
  Result<InvariantData> data = ComputeInvariant(instance);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

TEST(GraphIsoTest, SelfIsomorphic) {
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1dInstance(), Fig7bInstance(), NestedInstance()}) {
    InvariantData data = Inv(instance);
    EXPECT_TRUE(GraphIsomorphic(data, data));
  }
}

TEST(GraphIsoTest, TransformedCopiesIsomorphic) {
  AffineTransform t = *AffineTransform::Make(2, 0, 3, 1, 1, -5);
  for (const SpatialInstance& instance : {Fig1cInstance(), Fig1bInstance()}) {
    Result<SpatialInstance> image = t.ApplyToInstance(instance);
    ASSERT_TRUE(image.ok());
    EXPECT_TRUE(GraphIsomorphic(Inv(instance), Inv(*image)));
  }
}

TEST(GraphIsoTest, DistinguishesFig1Pairs) {
  // G_I still separates Fig 1a/1b and 1c/1d (the 4-intersection relations
  // alone do not; see fourint tests).
  EXPECT_FALSE(GraphIsomorphic(Inv(Fig1aInstance()), Inv(Fig1bInstance())));
  EXPECT_FALSE(GraphIsomorphic(Inv(Fig1cInstance()), Inv(Fig1dInstance())));
}

TEST(GraphIsoTest, Fig7aGraphsIsomorphicButInvariantsNot) {
  // The paper's Fig 7a: G_I and G_I' are isomorphic, yet the instances are
  // not topologically equivalent — the orientation relation O is needed.
  InvariantData i = Inv(Fig7aInstance());
  InvariantData ip = Inv(Fig7aPrimeInstance());
  EXPECT_TRUE(GraphIsomorphic(i, ip));
  EXPECT_FALSE(*Isomorphic(i, ip));
}

TEST(GraphIsoTest, Fig7bGraphsIsomorphicButInvariantsNot) {
  InvariantData i = Inv(Fig7bInstance());
  InvariantData ip = Inv(Fig7bPrimeInstance());
  EXPECT_TRUE(GraphIsomorphic(i, ip));
  EXPECT_FALSE(*Isomorphic(i, ip));
}

TEST(GraphIsoTest, Fig6ExteriorDistinguishedAtGraphLevel) {
  // G_I includes f0: the everted structure is separated by GraphIsomorphic
  // with the exterior marker, but not without it.
  InvariantData data = Inv(Fig6Instance());
  int pocket = -1;
  for (size_t f = 0; f < data.faces.size(); ++f) {
    if (!data.faces[f].unbounded &&
        LabelString(data.faces[f].label) == "---") {
      pocket = static_cast<int>(f);
    }
  }
  ASSERT_NE(pocket, -1);
  InvariantData everted = *data.WithExteriorFace(pocket);
  GraphIsoOptions with_exterior;
  EXPECT_FALSE(GraphIsomorphic(data, everted, with_exterior));
  GraphIsoOptions no_exterior;
  no_exterior.include_exterior = false;
  EXPECT_TRUE(GraphIsomorphic(data, everted, no_exterior));
}

TEST(GraphIsoTest, DifferentNamesNotIsomorphic) {
  SpatialInstance a;
  ASSERT_TRUE(a.AddRegion("A", *Region::MakeRect(Point(0, 0), Point(2, 2)))
                  .ok());
  SpatialInstance b;
  ASSERT_TRUE(b.AddRegion("B", *Region::MakeRect(Point(0, 0), Point(2, 2)))
                  .ok());
  EXPECT_FALSE(GraphIsomorphic(Inv(a), Inv(b)));
}

TEST(GraphIsoTest, DifferentSizesNotIsomorphic) {
  EXPECT_FALSE(GraphIsomorphic(Inv(Fig1cInstance()), Inv(Fig1aInstance())));
}

}  // namespace
}  // namespace topodb
