// Differential fuzz for the vectorized CellSet word kernels
// (src/query/cellset.h): every SIMD path must produce byte-identical
// results to a plain scalar reference evaluated through the raw word
// accessors. Sizes straddle the 4-word (AVX2) and 2-word (SSE2) strides so
// both the vector body and the scalar tail are exercised, including the
// empty set, single-word sets, and exact multiples of the stride.

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/query/cellset.h"

namespace topodb {
namespace {

// --- scalar reference implementations over the raw words ------------------

int RefCount(const CellSet& s) {
  int n = 0;
  for (size_t i = 0; i < s.size_words(); ++i) n += std::popcount(s.word(i));
  return n;
}

bool RefAny(const CellSet& s) {
  for (size_t i = 0; i < s.size_words(); ++i) {
    if (s.word(i)) return true;
  }
  return false;
}

bool RefIntersects(const CellSet& a, const CellSet& b) {
  for (size_t i = 0; i < a.size_words(); ++i) {
    if (a.word(i) & b.word(i)) return true;
  }
  return false;
}

bool RefIsSubsetOf(const CellSet& a, const CellSet& b) {
  for (size_t i = 0; i < a.size_words(); ++i) {
    if (a.word(i) & ~b.word(i)) return false;
  }
  return true;
}

enum class BulkOp { kOr, kAnd, kAndNot };

CellSet RefBulk(const CellSet& a, const CellSet& b, BulkOp op) {
  CellSet out(a.size_bits());
  for (size_t i = 0; i < a.size_words(); ++i) {
    switch (op) {
      case BulkOp::kOr: out.set_word(i, a.word(i) | b.word(i)); break;
      case BulkOp::kAnd: out.set_word(i, a.word(i) & b.word(i)); break;
      case BulkOp::kAndNot: out.set_word(i, a.word(i) & ~b.word(i)); break;
    }
  }
  return out;
}

// Random set; density picks between near-empty, mixed and near-full so the
// early-exit kernels (Any/Intersects/IsSubsetOf) see both outcomes often.
CellSet RandomSet(std::mt19937_64& rng, int bits) {
  CellSet s(bits);
  const int density = static_cast<int>(rng() % 3);
  for (int i = 0; i < bits; ++i) {
    const bool set = density == 0 ? (rng() % 97 == 0)
                    : density == 1 ? (rng() & 1)
                                   : (rng() % 97 != 0);
    if (set) s.Set(i);
  }
  return s;
}

void ExpectWordsEqual(const CellSet& got, const CellSet& want) {
  ASSERT_EQ(got.size_bits(), want.size_bits());
  for (size_t i = 0; i < want.size_words(); ++i) {
    EXPECT_EQ(got.word(i), want.word(i)) << "word " << i;
  }
}

// Bit widths straddling every stride boundary: 0..2 words, exactly 4 words
// (one AVX2 step, no tail), 4 words + tail, two steps, and larger.
const int kSizes[] = {0,  1,   63,  64,  65,  127, 128, 129, 191, 192,
                      255, 256, 257, 319, 320, 500, 512, 513, 1000, 1024};

TEST(CellSetSimdTest, CountAnyMatchScalarReference) {
  std::mt19937_64 rng(41);
  for (int bits : kSizes) {
    for (int iter = 0; iter < 30; ++iter) {
      const CellSet s = RandomSet(rng, bits);
      EXPECT_EQ(s.Count(), RefCount(s)) << "bits=" << bits;
      EXPECT_EQ(s.Any(), RefAny(s)) << "bits=" << bits;
      EXPECT_EQ(s.None(), !RefAny(s)) << "bits=" << bits;
    }
    // The all-zero and all-one patterns are the kernels' edge cases.
    CellSet zero(bits);
    EXPECT_EQ(zero.Count(), 0);
    EXPECT_FALSE(zero.Any());
    CellSet full(bits);
    for (int i = 0; i < bits; ++i) full.Set(i);
    EXPECT_EQ(full.Count(), bits);
    EXPECT_EQ(full.Any(), bits > 0);
  }
}

TEST(CellSetSimdTest, IntersectsMatchesScalarReference) {
  std::mt19937_64 rng(42);
  for (int bits : kSizes) {
    for (int iter = 0; iter < 30; ++iter) {
      const CellSet a = RandomSet(rng, bits);
      const CellSet b = RandomSet(rng, bits);
      EXPECT_EQ(a.Intersects(b), RefIntersects(a, b)) << "bits=" << bits;
      EXPECT_EQ(b.Intersects(a), RefIntersects(b, a)) << "bits=" << bits;
      // Disjoint by construction: b with a's bits removed.
      CellSet c = b;
      c.AndNot(a);
      EXPECT_FALSE(c.Intersects(a)) << "bits=" << bits;
      // A single shared bit deep in the tail must be found.
      if (bits > 0) {
        const int pos = bits - 1;
        CellSet x(bits), y(bits);
        x.Set(pos);
        y.Set(pos);
        EXPECT_TRUE(x.Intersects(y));
      }
    }
  }
}

TEST(CellSetSimdTest, IsSubsetOfMatchesScalarReference) {
  std::mt19937_64 rng(43);
  for (int bits : kSizes) {
    for (int iter = 0; iter < 30; ++iter) {
      const CellSet a = RandomSet(rng, bits);
      const CellSet b = RandomSet(rng, bits);
      EXPECT_EQ(a.IsSubsetOf(b), RefIsSubsetOf(a, b)) << "bits=" << bits;
      EXPECT_TRUE(a.IsSubsetOf(a));
      // A true subset built by intersecting.
      CellSet inter = a;
      inter &= b;
      EXPECT_TRUE(inter.IsSubsetOf(a)) << "bits=" << bits;
      EXPECT_TRUE(inter.IsSubsetOf(b)) << "bits=" << bits;
      // One extra bit outside b breaks the subset relation.
      if (bits > 0) {
        CellSet c = b;
        int clear_pos = -1;
        for (int i = bits - 1; i >= 0; --i) {
          if (!c.Test(i)) {
            clear_pos = i;
            break;
          }
        }
        if (clear_pos >= 0) {
          CellSet d = inter;
          d.Set(clear_pos);
          EXPECT_FALSE(d.IsSubsetOf(b)) << "bits=" << bits;
        }
      }
    }
  }
}

TEST(CellSetSimdTest, BulkOpsMatchScalarReference) {
  std::mt19937_64 rng(44);
  for (int bits : kSizes) {
    for (int iter = 0; iter < 30; ++iter) {
      const CellSet a = RandomSet(rng, bits);
      const CellSet b = RandomSet(rng, bits);
      CellSet o = a;
      o |= b;
      ExpectWordsEqual(o, RefBulk(a, b, BulkOp::kOr));
      CellSet n = a;
      n &= b;
      ExpectWordsEqual(n, RefBulk(a, b, BulkOp::kAnd));
      CellSet d = a;
      d.AndNot(b);
      ExpectWordsEqual(d, RefBulk(a, b, BulkOp::kAndNot));
      // Algebra the evaluator relies on: (a&b) | (a\b) == a.
      CellSet recon = n;
      recon |= d;
      ExpectWordsEqual(recon, a);
      EXPECT_EQ(recon.Hash(), a.Hash());
      EXPECT_TRUE(recon == a);
    }
  }
}

TEST(CellSetSimdTest, RoundTripAndEnumerationStayConsistent) {
  std::mt19937_64 rng(45);
  for (int bits : kSizes) {
    const CellSet s = RandomSet(rng, bits);
    const CellSet back = CellSet::FromCharVector(s.ToCharVector());
    EXPECT_TRUE(back == s) << "bits=" << bits;
    int prev = -1, seen = 0;
    s.ForEachSetBit([&](int i) {
      EXPECT_GT(i, prev);
      EXPECT_TRUE(s.Test(i));
      prev = i;
      ++seen;
    });
    EXPECT_EQ(seen, s.Count());
  }
}

}  // namespace
}  // namespace topodb
