// Store-layer tests: golden byte layout (any drift in the persisted
// format must be a deliberate, reviewed change), corrupt-store handling
// (truncations, bit flips, bad magic/version, bounds attacks — every one
// a clean DataLoss/Unsupported error under ASan/UBSan, never UB), and
// catalog behavior (ingest durability, crash recovery, replacement
// semantics, name validation).

#include "src/store/catalog.h"
#include "src/store/format.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/invariant/data.h"
#include "src/invariant/s_invariant.h"
#include "src/region/io.h"
#include "src/thematic/thematic.h"

namespace topodb {
namespace {

// Two nested rectilinear rectangles: small, deterministic, and
// rectilinear so the optional S-invariant section is exercised too.
constexpr char kText[] =
    "A: (0 0, 4 0, 4 4, 0 4)\n"
    "B: (1 1, 3 1, 3 2, 1 2)\n";

// Builds a StoredInstance through the same pipeline Catalog::Ingest runs.
StoredInstance MakeStored(const std::string& name, const std::string& text) {
  StoredInstance stored;
  stored.name = name;
  auto instance = ParseInstanceText(text);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  stored.instance_text = WriteInstanceText(*instance);
  auto invariant = ComputeInvariant(*instance);
  EXPECT_TRUE(invariant.ok()) << invariant.status().ToString();
  stored.invariant = *invariant;
  auto canonical = CanonicalInvariantString(*invariant);
  EXPECT_TRUE(canonical.ok()) << canonical.status().ToString();
  stored.canonical = *canonical;
  auto s = SInvariant::Compute(*instance);
  if (s.ok()) {
    stored.has_s_invariant = true;
    stored.s_invariant = s->canonical();
  }
  stored.thematic = ToThematic(*invariant);
  return stored;
}

uint64_t ReadLE(const std::string& data, size_t pos, size_t n) {
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

void WriteLE32(std::string* data, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) (*data)[pos + i] = static_cast<char>(v >> (8 * i));
}

// Rewrites the header checksum to match the (patched) payload, so tests
// can corrupt payload *structure* and still get past the checksum gate.
void FixChecksum(std::string* file) {
  const uint64_t sum = Fnv1a64(std::string_view(*file).substr(kStoreHeaderBytes));
  for (int i = 0; i < 8; ++i) (*file)[16 + i] = static_cast<char>(sum >> (8 * i));
}

// Byte offset (into the whole file) of section-table entry `index`.
size_t TableEntryAt(size_t index) {
  return kStoreHeaderBytes + 4 + index * 24;
}

std::string TempCatalogDir() {
  std::string tmpl = testing::TempDir() + "topodb_store_XXXXXX";
  EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(FormatTest, Fnv1a64KnownAnswers) {
  // Published FNV-1a 64 vectors; a digest change silently invalidates
  // every existing store file's checksum and entry id.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(FormatTest, GoldenByteLayout) {
  const std::string file = EncodeStoreFile(MakeStored("gold", kText));
  // Header: magic "TPDS", version 1, payload length, checksum, reserved.
  ASSERT_GE(file.size(), kStoreHeaderBytes);
  EXPECT_EQ(file.substr(0, 4), "TPDS");
  EXPECT_EQ(ReadLE(file, 4, 4), kStoreFormatVersion);
  EXPECT_EQ(ReadLE(file, 8, 8), file.size() - kStoreHeaderBytes);
  EXPECT_EQ(ReadLE(file, 16, 8),
            Fnv1a64(std::string_view(file).substr(kStoreHeaderBytes)));
  EXPECT_EQ(ReadLE(file, 24, 8), 0u);
  // Section table: all seven kinds (the instance is rectilinear, so the
  // S-invariant section is present), ascending, contiguous bytes starting
  // right after the table.
  ASSERT_EQ(ReadLE(file, kStoreHeaderBytes, 4), 7u);
  uint64_t expect_offset = 4 + 7 * 24;
  for (size_t i = 0; i < 7; ++i) {
    const size_t entry = TableEntryAt(i);
    EXPECT_EQ(ReadLE(file, entry, 4), i + 1) << "section " << i;
    EXPECT_EQ(ReadLE(file, entry + 4, 4), 0u) << "section " << i;
    EXPECT_EQ(ReadLE(file, entry + 8, 8), expect_offset) << "section " << i;
    expect_offset += ReadLE(file, entry + 16, 8);
  }
  EXPECT_EQ(kStoreHeaderBytes + expect_offset, file.size());
  // The whole-file digest pins every byte of the layout: header, table,
  // and each section's internal encoding. If this changes, either bump
  // kStoreFormatVersion or be certain the old files still parse.
  EXPECT_EQ(Fnv1a64(file), 0x8ec014b7adca2154ull)
      << "store layout drifted; digest is now 0x" << std::hex << Fnv1a64(file);
}

TEST(FormatTest, EncodeIsDeterministicAndRoundTrips) {
  const StoredInstance stored = MakeStored("rt", kText);
  const std::string file = EncodeStoreFile(stored);
  EXPECT_EQ(file, EncodeStoreFile(stored));  // Equal input, equal bytes.

  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->format_version(), kStoreFormatVersion);
  EXPECT_EQ(view->entry_id(), ReadLE(file, 16, 8));
  EXPECT_EQ(view->name(), "rt");
  EXPECT_EQ(view->instance_text(), stored.instance_text);
  EXPECT_EQ(view->canonical(), stored.canonical);
  ASSERT_TRUE(view->has_s_invariant());
  EXPECT_EQ(view->s_invariant(), stored.s_invariant);

  const StoreStats stats = view->stats();
  EXPECT_EQ(stats.num_regions, stored.invariant.region_names.size());
  EXPECT_EQ(stats.num_vertices, stored.invariant.vertices.size());
  EXPECT_EQ(stats.num_edges, stored.invariant.edges.size());
  EXPECT_EQ(stats.num_faces, stored.invariant.faces.size());

  const Result<InvariantData> decoded = view->DecodeInvariantData();
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The decoded invariant must be semantically identical: same canonical
  // string under the same options.
  const auto canon = CanonicalInvariantString(*decoded);
  ASSERT_TRUE(canon.ok());
  EXPECT_EQ(*canon, stored.canonical);

  const Result<ThematicInstance> theme = view->DecodeThematic();
  ASSERT_TRUE(theme.ok()) << theme.status().ToString();
  EXPECT_EQ(theme->regions.size(), stored.thematic.regions.size());
  EXPECT_EQ(theme->face_edges.size(), stored.thematic.face_edges.size());
  EXPECT_EQ(theme->outer_cycle.size(), stored.thematic.outer_cycle.size());
}

TEST(FormatTest, NonRectilinearInstanceOmitsSInvariant) {
  const StoredInstance stored =
      MakeStored("tri", "T: (0 0, 4 0, 2 3)\n");
  EXPECT_FALSE(stored.has_s_invariant);
  const Result<StoreFileView> view =
      StoreFileView::Parse(EncodeStoreFile(stored));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view->has_s_invariant());
  EXPECT_TRUE(view->s_invariant().empty());
}

TEST(CorruptStoreTest, EveryTruncationIsACleanError) {
  const std::string file = EncodeStoreFile(MakeStored("t", kText));
  for (size_t len = 0; len < file.size(); ++len) {
    const Result<StoreFileView> view =
        StoreFileView::Parse(std::string_view(file).substr(0, len));
    ASSERT_FALSE(view.ok()) << "accepted a " << len << "-byte prefix of a "
                            << file.size() << "-byte file";
    EXPECT_EQ(view.status().code(), StatusCode::kDataLoss) << "len " << len;
  }
}

TEST(CorruptStoreTest, ZeroLengthBytesAreDataLoss) {
  const Result<StoreFileView> view = StoreFileView::Parse(std::string_view());
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptStoreTest, FlippedChecksumByteIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("c", kText));
  file[16] = static_cast<char>(file[16] ^ 0x01);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(view.status().message().find("checksum"), std::string::npos);
}

TEST(CorruptStoreTest, FlippedPayloadByteIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("p", kText));
  file[file.size() - 1] = static_cast<char>(file.back() ^ 0x80);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptStoreTest, WrongMagicIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("m", kText));
  file[0] = 'X';
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(view.status().message().find("magic"), std::string::npos);
}

TEST(CorruptStoreTest, UnknownVersionIsUnsupportedNotDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("v", kText));
  WriteLE32(&file, 4, kStoreFormatVersion + 1);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  // A future format is not corruption; the caller can say "upgrade me".
  EXPECT_EQ(view.status().code(), StatusCode::kUnsupported);
}

TEST(CorruptStoreTest, TrailingGarbageIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("g", kText));
  file += "extra";
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptStoreTest, SectionSpanOutsidePayloadIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("s", kText));
  // Stretch the first section's length far past the payload; the bounds
  // check must trip even though the checksum (recomputed) passes.
  const size_t len_field = TableEntryAt(0) + 16;
  for (int i = 0; i < 8; ++i) {
    file[len_field + i] = static_cast<char>(0xff);
  }
  FixChecksum(&file);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(view.status().message().find("outside"), std::string::npos);
}

TEST(CorruptStoreTest, AbsurdSectionCountIsRejectedBeforeAllocation) {
  std::string file = EncodeStoreFile(MakeStored("n", kText));
  WriteLE32(&file, kStoreHeaderBytes, 0x40000000u);
  FixChecksum(&file);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptStoreTest, DuplicateSectionKindIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("d", kText));
  // Relabel section 1 (instance text) as kind 1 (name): duplicate.
  WriteLE32(&file, TableEntryAt(1), 1);
  FixChecksum(&file);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(view.status().message().find("duplicate"), std::string::npos);
}

TEST(CorruptStoreTest, MissingRequiredSectionIsDataLoss) {
  std::string file = EncodeStoreFile(MakeStored("r", kText));
  // Relabel the canonical section as an unknown kind. Unknown kinds are
  // legitimately skipped (forward compatibility), so the failure must be
  // the *absence* of a required section, not the unknown kind itself.
  WriteLE32(&file, TableEntryAt(2), 99);
  FixChecksum(&file);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(view.status().message().find("missing required"),
            std::string::npos);
}

TEST(CorruptStoreTest, CorruptInvariantCountsFailDecodeCleanly) {
  std::string file = EncodeStoreFile(MakeStored("i", kText));
  // Locate the invariant-data section via the (specified) table layout
  // and blow up its vertex count. Parse() still succeeds — the section
  // table is fine — but DecodeInvariantData must refuse to allocate.
  const size_t entry = TableEntryAt(4);  // kinds 1..7 in order, kind 5.
  ASSERT_EQ(ReadLE(file, entry, 4), 5u);
  const size_t section = kStoreHeaderBytes + ReadLE(file, entry + 8, 8);
  WriteLE32(&file, section + 4, 0x7fffffffu);  // num_vertices.
  FixChecksum(&file);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const Result<InvariantData> decoded = view->DecodeInvariantData();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CorruptStoreTest, WellFormednessIsRecheckedAfterDecode) {
  std::string file = EncodeStoreFile(MakeStored("w", kText));
  const size_t entry = TableEntryAt(4);
  const size_t section = kStoreHeaderBytes + ReadLE(file, entry + 8, 8);
  // exterior_face sits after the four counts; point it at a bogus face.
  WriteLE32(&file, section + 16, 0x00ffffffu);
  FixChecksum(&file);
  const Result<StoreFileView> view = StoreFileView::Parse(file);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const Result<InvariantData> decoded = view->DecodeInvariantData();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CatalogTest, IngestFindListDescribeLifecycle) {
  const std::string dir = TempCatalogDir();
  MetricsRegistry metrics;
  CatalogOptions options;
  options.directory = dir;
  options.metrics = &metrics;
  auto catalog = Catalog::Open(options);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  const auto a = (*catalog)->Ingest("alpha", kText);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  const auto b = (*catalog)->Ingest("beta", "T: (0 0, 4 0, 2 3)\n");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ((*catalog)->size(), 2u);

  const auto found = (*catalog)->Find("alpha");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "alpha");
  EXPECT_EQ((*found)->entry_id(), (*a)->entry_id());

  const auto missing = (*catalog)->Find("gamma");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("unknown instance 'gamma'"),
            std::string::npos);

  const auto listing = (*catalog)->List();
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].name, "alpha");  // Sorted by name.
  EXPECT_EQ(listing[1].name, "beta");
  EXPECT_EQ(listing[0].entry_id, (*a)->entry_id());
  EXPECT_GT(listing[0].file_bytes, 0u);
}

TEST(CatalogTest, IngestIsDeterministicAndReplaceable) {
  const std::string dir = TempCatalogDir();
  CatalogOptions options;
  options.directory = dir;
  auto catalog = Catalog::Open(options);
  ASSERT_TRUE(catalog.ok());

  const auto first = (*catalog)->Ingest("x", kText);
  ASSERT_TRUE(first.ok());
  const auto again = (*catalog)->Ingest("x", kText);
  ASSERT_TRUE(again.ok());
  // Same text, same bytes, same content id — and still one entry.
  EXPECT_EQ((*again)->entry_id(), (*first)->entry_id());
  EXPECT_EQ((*catalog)->size(), 1u);

  // A request holding the old entry across a replacement keeps a valid
  // mapping (the shared_ptr owns it); the catalog serves the new one.
  const auto replaced = (*catalog)->Ingest("x", "T: (0 0, 4 0, 2 3)\n");
  ASSERT_TRUE(replaced.ok());
  EXPECT_NE((*replaced)->entry_id(), (*first)->entry_id());
  EXPECT_EQ((*first)->name(), "x");  // Old mapping still readable.
  const auto now = (*catalog)->Find("x");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ((*now)->entry_id(), (*replaced)->entry_id());
  EXPECT_EQ((*catalog)->size(), 1u);
}

TEST(CatalogTest, IngestValidatesNamesAndText) {
  const std::string dir = TempCatalogDir();
  CatalogOptions options;
  options.directory = dir;
  auto catalog = Catalog::Open(options);
  ASSERT_TRUE(catalog.ok());

  EXPECT_EQ((*catalog)->Ingest("", kText).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*catalog)->Ingest("a/b", kText).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*catalog)->Ingest("a\nb", kText).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*catalog)->Ingest(std::string(300, 'n'), kText).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*catalog)->Ingest("bad", "not an instance").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ((*catalog)->size(), 0u);
}

TEST(CatalogTest, RestartServesTheSameBytes) {
  const std::string dir = TempCatalogDir();
  uint64_t entry_id = 0;
  std::string canonical;
  {
    CatalogOptions options;
    options.directory = dir;
    auto catalog = Catalog::Open(options);
    ASSERT_TRUE(catalog.ok());
    const auto entry = (*catalog)->Ingest("persist", kText);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    entry_id = (*entry)->entry_id();
    canonical = std::string((*entry)->view().canonical());
  }  // Catalog destroyed: mappings dropped, only the files remain.
  CatalogOptions options;
  options.directory = dir;
  CatalogScanReport report;
  auto reopened = Catalog::Open(options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped_corrupt, 0u);
  const auto entry = (*reopened)->Find("persist");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->entry_id(), entry_id);
  EXPECT_EQ((*entry)->view().canonical(), canonical);
}

TEST(CatalogTest, CrashRecoveryScanSkipsCorruptAndRemovesTmp) {
  const std::string dir = TempCatalogDir();
  std::string valid_file;
  {
    CatalogOptions options;
    options.directory = dir;
    auto catalog = Catalog::Open(options);
    ASSERT_TRUE(catalog.ok());
    const auto entry = (*catalog)->Ingest("ok", kText);
    ASSERT_TRUE(entry.ok());
    valid_file = (*entry)->path();
  }
  // Simulate the crash-window artifacts an interrupted ingest can leave:
  // a stray tmp file, a truncated store file, a zero-length file, and a
  // file of garbage.
  std::string valid_bytes;
  {
    std::ifstream in(valid_file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    valid_bytes = buf.str();
  }
  WriteFile(dir + "/inst-dead.tpds.tmp", "partial write");
  WriteFile(dir + "/inst-trunc.tpds",
            valid_bytes.substr(0, valid_bytes.size() / 2));
  WriteFile(dir + "/inst-empty.tpds", "");
  WriteFile(dir + "/inst-junk.tpds", "this is not a store file");

  CatalogOptions options;
  options.directory = dir;
  CatalogScanReport report;
  auto catalog = Catalog::Open(options, &report);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped_corrupt, 3u);
  EXPECT_EQ(report.removed_tmp, 1u);
  ASSERT_EQ(report.skipped.size(), 3u);
  // The healthy entry is served; the tmp stray is gone from disk;
  // corrupt files are left in place for forensics, but never loaded.
  EXPECT_TRUE((*catalog)->Find("ok").ok());
  EXPECT_EQ((*catalog)->size(), 1u);
  EXPECT_NE(access((dir + "/inst-trunc.tpds").c_str(), F_OK), -1);
  EXPECT_EQ(access((dir + "/inst-dead.tpds.tmp").c_str(), F_OK), -1);
}

TEST(CatalogTest, ScanRejectsRenamedStoreFiles) {
  // A store file copied under a name that hashes differently still loads
  // (paths are derived, not authoritative) — but two files claiming the
  // same embedded name must not both load.
  const std::string dir = TempCatalogDir();
  std::string valid_file;
  {
    CatalogOptions options;
    options.directory = dir;
    auto catalog = Catalog::Open(options);
    ASSERT_TRUE(catalog.ok());
    const auto entry = (*catalog)->Ingest("dup", kText);
    ASSERT_TRUE(entry.ok());
    valid_file = (*entry)->path();
  }
  std::string bytes;
  {
    std::ifstream in(valid_file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  WriteFile(dir + "/inst-copy.tpds", bytes);
  CatalogOptions options;
  options.directory = dir;
  CatalogScanReport report;
  auto catalog = Catalog::Open(options, &report);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(report.loaded + report.skipped_corrupt, 2u);
  EXPECT_EQ((*catalog)->size(), 1u);
  EXPECT_TRUE((*catalog)->Find("dup").ok());
}

TEST(CatalogTest, ValidateCatalogNameContract) {
  EXPECT_TRUE(ValidateCatalogName("fig6").ok());
  EXPECT_TRUE(ValidateCatalogName("chain:64").ok());
  EXPECT_TRUE(ValidateCatalogName(std::string(256, 'x')).ok());
  EXPECT_FALSE(ValidateCatalogName("").ok());
  EXPECT_FALSE(ValidateCatalogName(std::string(257, 'x')).ok());
  EXPECT_FALSE(ValidateCatalogName("a/b").ok());
  EXPECT_FALSE(ValidateCatalogName("a\tb").ok());
}

TEST(CatalogTest, DeadlinedIngestFailsWithoutBurningTheWorker) {
  const std::string dir = TempCatalogDir();
  CatalogOptions options;
  options.directory = dir;
  auto catalog = Catalog::Open(options);
  ASSERT_TRUE(catalog.ok());
  // An already-expired deadline must stop the pipeline between stages.
  const auto entry = (*catalog)->Ingest(
      "late", kText, StopSignal(Deadline::Expired(), nullptr));
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ((*catalog)->size(), 0u);
}

}  // namespace
}  // namespace topodb
