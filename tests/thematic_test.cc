#include "src/thematic/thematic.h"

#include <gtest/gtest.h>

#include "src/invariant/canonical.h"
#include "src/region/fixtures.h"

namespace topodb {
namespace {

InvariantData Inv(const SpatialInstance& instance) {
  Result<InvariantData> data = ComputeInvariant(instance);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

TEST(ThematicTest, Fig9TableShapes) {
  // The paper's Fig 9: thematic instance of Fig 1c.
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  EXPECT_EQ(theme.regions.size(), 2u);
  EXPECT_EQ(theme.vertices.size(), 2u);
  EXPECT_EQ(theme.edges.size(), 4u);
  EXPECT_EQ(theme.faces.size(), 4u);
  EXPECT_EQ(theme.exterior_face.size(), 1u);
  EXPECT_EQ(theme.endpoints.size(), 4u);
  // Each face has two boundary edges: 8 Face-Edges rows.
  EXPECT_EQ(theme.face_edges.size(), 8u);
  // A has two faces (its own part and the lens), likewise B.
  EXPECT_EQ(theme.region_faces.size(), 4u);
  // 8 darts, ccw + cw rows each.
  EXPECT_EQ(theme.orientation.size(), 16u);
}

TEST(ThematicTest, RoundTripPreservesInvariant) {
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig6Instance(), Fig7aInstance(), Fig7bInstance(),
        SingleRegionInstance(), NestedInstance(), DisjointPairInstance()}) {
    InvariantData data = Inv(instance);
    ThematicInstance theme = ToThematic(data);
    Result<InvariantData> back = FromThematic(theme);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*Isomorphic(data, *back)) << data.DebugString();
    // Labels are re-derived exactly; cells may be renumbered (ids sort as
    // strings), so compare label multisets.
    auto label_multiset = [](const auto& cells) {
      std::multiset<std::string> out;
      for (const auto& cell : cells) out.insert(LabelString(cell.label));
      return out;
    };
    EXPECT_EQ(label_multiset(back->vertices), label_multiset(data.vertices));
    EXPECT_EQ(label_multiset(back->edges), label_multiset(data.edges));
    EXPECT_EQ(label_multiset(back->faces), label_multiset(data.faces));
  }
}

TEST(ThematicTest, ValidatesFixtures) {
  for (const SpatialInstance& instance :
       {Fig1cInstance(), Fig1dInstance(), NestedInstance()}) {
    ThematicInstance theme = ToThematic(Inv(instance));
    EXPECT_TRUE(ValidateThematic(theme).ok());
  }
}

TEST(ThematicTest, RejectsDanglingEdgeEndpoint) {
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  ASSERT_TRUE(theme.endpoints.Insert({"e9", "v0", "v1"}).ok());
  EXPECT_FALSE(ValidateThematic(theme).ok());
}

TEST(ThematicTest, RejectsMissingEndpoints) {
  InvariantData data = Inv(Fig1cInstance());
  ThematicInstance theme = ToThematic(data);
  // Rebuild endpoints without one row.
  Table pruned = *Table::Make({"edge", "vertex1", "vertex2"});
  bool skipped = false;
  for (const auto& row : theme.endpoints.rows()) {
    if (!skipped) {
      skipped = true;
      continue;
    }
    ASSERT_TRUE(pruned.Insert(row).ok());
  }
  theme.endpoints = pruned;
  EXPECT_FALSE(FromThematic(theme).ok());
}

TEST(ThematicTest, RejectsNonFunctionalOrientation) {
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  // A second ccw successor for e0+.
  ASSERT_TRUE(theme.orientation.Insert({"ccw", "v0", "e0+", "e0-"}).ok());
  Result<InvariantData> back = FromThematic(theme);
  // Either the duplicate makes the relation non-functional or it targets a
  // different vertex; both are rejected.
  EXPECT_FALSE(back.ok());
}

TEST(ThematicTest, RejectsTwoExteriorFaces) {
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  ASSERT_TRUE(theme.exterior_face.Insert({"f0"}).ok());
  ASSERT_TRUE(theme.exterior_face.Insert({"f1"}).ok());
  EXPECT_FALSE(FromThematic(theme).ok());
}

TEST(ThematicTest, RejectsRegionOnUnknownFace) {
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  ASSERT_TRUE(theme.region_faces.Insert({"A", "f99"}).ok());
  EXPECT_FALSE(ValidateThematic(theme).ok());
}

TEST(ThematicTest, RejectsRegionWithDisconnectedFaces) {
  // Claim the exterior face for region A: reconstruction succeeds but the
  // labeled-planar-graph validation rejects it (region covers f0).
  InvariantData data = Inv(Fig1cInstance());
  ThematicInstance theme = ToThematic(data);
  ASSERT_TRUE(
      theme.region_faces.Insert({"A", FaceId(data.exterior_face)}).ok());
  EXPECT_FALSE(ValidateThematic(theme).ok());
}

TEST(ThematicTest, RejectsInconsistentFaceEdges) {
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  // Find a face-edge pair that is absent and insert it.
  for (int f = 0; f < 4; ++f) {
    for (int e = 0; e < 4; ++e) {
      std::vector<std::string> row = {FaceId(f), EdgeId(e)};
      if (!theme.face_edges.Contains(row)) {
        ASSERT_TRUE(theme.face_edges.Insert(row).ok());
        EXPECT_FALSE(FromThematic(theme).ok());
        return;
      }
    }
  }
  FAIL() << "face_edges was already complete?";
}

TEST(ThematicTest, RelationalQueriesOnTheme) {
  // Cor 3.7 flavor: classical queries against thematic(I). "Faces of
  // region A" and "edges on the boundary of those faces".
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  Result<Table> a_faces = theme.region_faces.SelectEquals("region", "A");
  ASSERT_TRUE(a_faces.ok());
  EXPECT_EQ(a_faces->size(), 2u);
  Result<Table> a_face_edges = a_faces->Join(theme.face_edges);
  ASSERT_TRUE(a_face_edges.ok());
  Result<Table> edges = a_face_edges->Project({"edge"});
  ASSERT_TRUE(edges.ok());
  // The lens face and the A-only face share B's inner arc, so their union
  // has 3 distinct boundary edges.
  EXPECT_EQ(edges->size(), 3u);
}

TEST(ThematicTest, IdHelpers) {
  EXPECT_EQ(VertexId(3), "v3");
  EXPECT_EQ(EdgeId(0), "e0");
  EXPECT_EQ(EndId(0), "e0+");
  EXPECT_EQ(EndId(1), "e0-");
  EXPECT_EQ(EndId(5), "e2-");
  EXPECT_EQ(FaceId(2), "f2");
}

TEST(ThematicTest, DebugStringShowsRelations) {
  ThematicInstance theme = ToThematic(Inv(Fig1cInstance()));
  std::string dump = theme.DebugString();
  EXPECT_NE(dump.find("Regions:"), std::string::npos);
  EXPECT_NE(dump.find("Orientation:"), std::string::npos);
}

}  // namespace
}  // namespace topodb
