#include "src/arrangement/cell_complex.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/region/fixtures.h"

namespace topodb {
namespace {

// Multiset of face label strings, e.g. {"--", "o-", "-o", "oo"}.
std::multiset<std::string> FaceLabels(const CellComplex& complex) {
  std::multiset<std::string> labels;
  for (const auto& face : complex.faces()) {
    labels.insert(LabelString(face.label));
  }
  return labels;
}

// Checks structural invariants every cell complex must satisfy.
void CheckWellFormed(const CellComplex& complex) {
  const auto& darts = complex.darts();
  ASSERT_EQ(darts.size(), 2 * complex.edges().size());
  for (size_t d = 0; d < darts.size(); ++d) {
    EXPECT_EQ(darts[darts[d].twin].twin, static_cast<int>(d));
    EXPECT_NE(darts[d].face, -1);
    EXPECT_EQ(darts[darts[d].next_ccw].prev_ccw, static_cast<int>(d));
    // Face walk is a permutation cycle.
    EXPECT_EQ(darts[darts[d].next_in_face].face, darts[d].face);
  }
  // Each vertex's rotation covers exactly its darts.
  size_t dart_count = 0;
  for (const auto& vertex : complex.vertices()) {
    dart_count += vertex.darts.size();
    for (int d : vertex.darts) {
      EXPECT_EQ(darts[d].origin,
                static_cast<int>(&vertex - complex.vertices().data()));
    }
  }
  EXPECT_EQ(dart_count, darts.size());
  // Exactly one unbounded face, and it is the exterior face.
  int unbounded = 0;
  for (const auto& face : complex.faces()) {
    if (face.unbounded) ++unbounded;
  }
  EXPECT_EQ(unbounded, 1);
  EXPECT_TRUE(complex.faces()[complex.exterior_face()].unbounded);
  // Exterior face labeled all-exterior.
  for (Sign s : complex.faces()[complex.exterior_face()].label) {
    EXPECT_EQ(s, Sign::kExterior);
  }
  // Labels of the two faces across an edge differ exactly on the owners.
  for (size_t e = 0; e < complex.edges().size(); ++e) {
    auto [lf, rf] = complex.EdgeFaces(static_cast<int>(e));
    const auto& left = complex.faces()[lf].label;
    const auto& right = complex.faces()[rf].label;
    const auto& owners = complex.edges()[e].owners;
    for (size_t r = 0; r < left.size(); ++r) {
      const bool owned =
          std::find(owners.begin(), owners.end(), static_cast<int>(r)) !=
          owners.end();
      EXPECT_EQ(left[r] != right[r], owned);
    }
  }
}

TEST(CellComplexTest, EmptyInstance) {
  Result<CellComplex> complex = CellComplex::Build(SpatialInstance());
  ASSERT_TRUE(complex.ok());
  EXPECT_EQ(complex->vertices().size(), 0u);
  EXPECT_EQ(complex->edges().size(), 0u);
  EXPECT_EQ(complex->faces().size(), 1u);
  EXPECT_EQ(complex->exterior_face(), 0);
}

TEST(CellComplexTest, SingleRegionDegenerate) {
  // The paper's degenerate case: one region. We anchor the vertex-free
  // boundary cycle with one artificial vertex, giving 1 vertex, 1 loop
  // edge, 2 faces.
  Result<CellComplex> complex = CellComplex::Build(SingleRegionInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 1u);
  EXPECT_EQ(complex->edges().size(), 1u);
  EXPECT_EQ(complex->faces().size(), 2u);
  EXPECT_TRUE(complex->IsConnected());
  EXPECT_TRUE(complex->IsSimple());
  EXPECT_EQ(FaceLabels(*complex), (std::multiset<std::string>{"-", "o"}));
  // Loop edge: both endpoints are the anchor vertex.
  auto [u, v] = complex->EdgeEndpoints(0);
  EXPECT_EQ(u, v);
  EXPECT_EQ(LabelString(complex->edges()[0].label), "b");
  EXPECT_EQ(LabelString(complex->vertices()[0].label), "b");
}

TEST(CellComplexTest, Fig1cMatchesFig5) {
  // The paper's Fig 5: instance Fig 1c has two vertices, four edges, four
  // faces.
  Result<CellComplex> complex = CellComplex::Build(Fig1cInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 2u);
  EXPECT_EQ(complex->edges().size(), 4u);
  EXPECT_EQ(complex->faces().size(), 4u);
  EXPECT_TRUE(complex->IsConnected());
  EXPECT_TRUE(complex->IsSimple());
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"--", "o-", "-o", "oo"}));
  // Vertices are the two boundary crossings, labeled boundary-boundary.
  for (const auto& vertex : complex->vertices()) {
    EXPECT_EQ(LabelString(vertex.label), "bb");
    EXPECT_EQ(vertex.darts.size(), 4u);
  }
  // Edge labels: each boundary is split into an arc inside and an arc
  // outside the other region.
  std::multiset<std::string> edge_labels;
  for (const auto& edge : complex->edges()) {
    edge_labels.insert(LabelString(edge.label));
  }
  EXPECT_EQ(edge_labels,
            (std::multiset<std::string>{"b-", "bo", "-b", "ob"}));
}

TEST(CellComplexTest, Fig1dHasPocket) {
  Result<CellComplex> complex = CellComplex::Build(Fig1dInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 4u);
  EXPECT_EQ(complex->edges().size(), 8u);
  EXPECT_EQ(complex->faces().size(), 6u);
  EXPECT_TRUE(complex->IsConnected());
  // Two faces labeled exterior-to-all: the unbounded face and the pocket.
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"--", "--", "o-", "-o", "oo", "oo"}));
  // The exterior face is determined by unboundedness, not by its label.
  int all_minus = 0;
  for (const auto& face : complex->faces()) {
    if (LabelString(face.label) == "--") ++all_minus;
  }
  EXPECT_EQ(all_minus, 2);
}

TEST(CellComplexTest, Fig1aTripleOverlay) {
  Result<CellComplex> complex = CellComplex::Build(Fig1aInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 6u);
  EXPECT_EQ(complex->edges().size(), 12u);
  EXPECT_EQ(complex->faces().size(), 8u);
  // All eight label combinations occur: the instance realizes the full
  // Venn diagram of three regions.
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"---", "o--", "-o-", "--o", "oo-",
                                        "o-o", "-oo", "ooo"}));
}

TEST(CellComplexTest, Fig1bNoTripleFace) {
  Result<CellComplex> complex = CellComplex::Build(Fig1bInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_TRUE(complex->IsConnected());
  // Euler's formula for connected instances.
  EXPECT_EQ(complex->faces().size(),
            complex->edges().size() - complex->vertices().size() + 2);
  // No face is interior to all three regions, but every pairwise
  // combination occurs.
  std::multiset<std::string> labels = FaceLabels(*complex);
  EXPECT_EQ(labels.count("ooo"), 0u);
  EXPECT_GE(labels.count("oo-"), 1u);
  EXPECT_GE(labels.count("o-o"), 1u);
  EXPECT_GE(labels.count("-oo"), 1u);
}

TEST(CellComplexTest, NestedInstanceContainment) {
  Result<CellComplex> complex = CellComplex::Build(NestedInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 2u);  // Two anchors.
  EXPECT_EQ(complex->edges().size(), 2u);
  EXPECT_EQ(complex->faces().size(), 3u);
  EXPECT_FALSE(complex->IsConnected());
  EXPECT_EQ(complex->SkeletonComponentCount(), 2);
  EXPECT_FALSE(complex->IsSimple());
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"--", "o-", "oo"}));
  // The ring face (A interior, B exterior) has two boundary cycles.
  for (const auto& face : complex->faces()) {
    if (LabelString(face.label) == "o-") {
      EXPECT_EQ(face.cycle_darts.size(), 2u);
    } else {
      EXPECT_EQ(face.cycle_darts.size(), 1u);
    }
  }
}

TEST(CellComplexTest, DisjointPair) {
  Result<CellComplex> complex = CellComplex::Build(DisjointPairInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->SkeletonComponentCount(), 2);
  EXPECT_EQ(complex->faces().size(), 3u);
  // The unbounded face has both hole cycles.
  EXPECT_EQ(complex->faces()[complex->exterior_face()].cycle_darts.size(),
            2u);
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"--", "o-", "-o"}));
}

TEST(CellComplexTest, Fig7bTangentDiamonds) {
  Result<CellComplex> complex = CellComplex::Build(Fig7bInstance());
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 1u);
  EXPECT_EQ(complex->edges().size(), 4u);
  EXPECT_EQ(complex->faces().size(), 5u);
  EXPECT_TRUE(complex->IsConnected());
  EXPECT_FALSE(complex->IsSimple());  // Exterior boundary pinches 4 times.
  EXPECT_EQ(complex->vertices()[0].darts.size(), 8u);
  EXPECT_EQ(LabelString(complex->vertices()[0].label), "bbbb");
  // All four edges are loops at the origin vertex.
  for (size_t e = 0; e < 4; ++e) {
    auto [u, v] = complex->EdgeEndpoints(static_cast<int>(e));
    EXPECT_EQ(u, 0);
    EXPECT_EQ(v, 0);
  }
}

TEST(CellComplexTest, Fig7aTwoComponents) {
  Result<CellComplex> i = CellComplex::Build(Fig7aInstance());
  Result<CellComplex> ip = CellComplex::Build(Fig7aPrimeInstance());
  ASSERT_TRUE(i.ok());
  ASSERT_TRUE(ip.ok());
  CheckWellFormed(*i);
  CheckWellFormed(*ip);
  EXPECT_EQ(i->SkeletonComponentCount(), 2);
  EXPECT_EQ(ip->SkeletonComponentCount(), 2);
  // Mirroring preserves all counts and labels.
  EXPECT_EQ(i->vertices().size(), ip->vertices().size());
  EXPECT_EQ(i->edges().size(), ip->edges().size());
  EXPECT_EQ(i->faces().size(), ip->faces().size());
  EXPECT_EQ(FaceLabels(*i), FaceLabels(*ip));
}

TEST(CellComplexTest, SharedBoundaryArc) {
  // Two rectangles sharing a boundary segment: the shared arc is one edge
  // owned by both regions (meet relation).
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(4, 1), Point(8, 3)))
                  .ok());
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  // One edge owned by both regions.
  int shared = 0;
  for (const auto& edge : complex->edges()) {
    if (edge.owners.size() == 2) {
      ++shared;
      EXPECT_EQ(LabelString(edge.label), "bb");
    }
  }
  EXPECT_EQ(shared, 1);
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"--", "o-", "-o"}));
  EXPECT_TRUE(complex->IsConnected());
}

TEST(CellComplexTest, CornerTouch) {
  // Two squares meeting at exactly one corner point.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(2, 2)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakeRect(Point(2, 2), Point(4, 4)))
                  .ok());
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  EXPECT_EQ(complex->vertices().size(), 1u);
  EXPECT_EQ(complex->edges().size(), 2u);  // Two loops at the touch point.
  EXPECT_EQ(complex->faces().size(), 3u);
  EXPECT_EQ(LabelString(complex->vertices()[0].label), "bb");
}

TEST(CellComplexTest, TJunction) {
  // B's corner lies in the interior of A's edge: a degree-4 vertex whose
  // incident arcs have mixed owners, no crossing into A.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(4, 4)))
                  .ok());
  ASSERT_TRUE(instance.AddRegion(
      "B", *Region::MakePoly({Point(4, 2), Point(7, 0), Point(7, 5)})).ok());
  Result<CellComplex> complex = CellComplex::Build(instance);
  ASSERT_TRUE(complex.ok());
  CheckWellFormed(*complex);
  // Vertex at (4,2).
  bool found = false;
  for (const auto& vertex : complex->vertices()) {
    if (vertex.point == Point(4, 2)) {
      found = true;
      EXPECT_EQ(vertex.darts.size(), 4u);
      EXPECT_EQ(LabelString(vertex.label), "bb");
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(FaceLabels(*complex),
            (std::multiset<std::string>{"--", "o-", "-o"}));
}

TEST(CellComplexTest, DebugStringMentionsCounts) {
  Result<CellComplex> complex = CellComplex::Build(Fig1cInstance());
  ASSERT_TRUE(complex.ok());
  std::string dump = complex->DebugString();
  EXPECT_NE(dump.find("2 vertices"), std::string::npos);
  EXPECT_NE(dump.find("4 edges"), std::string::npos);
  EXPECT_NE(dump.find("4 faces"), std::string::npos);
}

TEST(CellComplexTest, RegionIndexLookup) {
  Result<CellComplex> complex = CellComplex::Build(Fig1aInstance());
  ASSERT_TRUE(complex.ok());
  EXPECT_EQ(complex->region_index("A"), 0);
  EXPECT_EQ(complex->region_index("B"), 1);
  EXPECT_EQ(complex->region_index("C"), 2);
  EXPECT_EQ(complex->region_index("Z"), -1);
}

TEST(CellComplexTest, ArenaBuildsAreBitIdentical) {
  // The limb arena changes where temporary limb buffers live, never what
  // any of them contain: builds with the arena on, off, and through the
  // pure exact-predicate path must produce the same complex down to every
  // rational coordinate (DebugString prints them exactly). The crossing
  // diagonals make intersection points with non-trivial denominators — the
  // values DetachComplex must copy out of the arena before it dies.
  SpatialInstance instance;
  ASSERT_TRUE(instance
                  .AddRegion("A", *Region::MakeRect(Point(0, 0), Point(7, 5)))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("B", *Region::MakePoly({Point(-2, -1), Point(9, 4),
                                                     Point(3, 8)}))
                  .ok());
  ASSERT_TRUE(instance
                  .AddRegion("C", *Region::MakePoly({Point(1, 6), Point(6, -2),
                                                     Point(8, 7)}))
                  .ok());
  const auto build = [&](bool arena, bool exact) {
    ArrangementOptions options;
    options.limb_arena = arena;
    options.exact_predicates = exact;
    Result<CellComplex> complex = CellComplex::Build(instance, options);
    EXPECT_TRUE(complex.ok());
    return complex->DebugString();
  };
  const std::string with_arena = build(true, false);
  const std::string without_arena = build(false, false);
  const std::string exact = build(false, true);
  const std::string exact_arena_requested = build(true, true);  // Forced off.
  EXPECT_EQ(with_arena, without_arena);
  EXPECT_EQ(with_arena, exact);
  EXPECT_EQ(with_arena, exact_arena_requested);
  EXPECT_NE(with_arena.find("vertices"), std::string::npos);
}

}  // namespace
}  // namespace topodb
