#include "src/reason/network.h"

#include <gtest/gtest.h>

#include "src/region/fixtures.h"

namespace topodb {
namespace {

using R = FourIntRelation;

TEST(RelationSetTest, Basics) {
  RelationSet all = RelationSet::All();
  EXPECT_EQ(all.size(), 8);
  RelationSet d = RelationSet::Of(R::kDisjoint);
  EXPECT_TRUE(d.Contains(R::kDisjoint));
  EXPECT_FALSE(d.Contains(R::kMeet));
  EXPECT_EQ((d | RelationSet::Of(R::kMeet)).size(), 2);
  EXPECT_TRUE((d & RelationSet::Of(R::kMeet)).empty());
  EXPECT_NE(d.ToString().find("disjoint"), std::string::npos);
}

TEST(RelationSetTest, ConverseMatchesInverse) {
  for (int i = 0; i < 8; ++i) {
    R r = static_cast<R>(i);
    EXPECT_EQ(RelationSet::Of(r).Converse(), RelationSet::Of(Inverse(r)));
  }
  EXPECT_EQ(RelationSet::All().Converse(), RelationSet::All());
}

// Table integrity: algebra axioms that catch transcription typos.

TEST(CompositionTest, IdentityLaws) {
  for (int i = 0; i < 8; ++i) {
    R r = static_cast<R>(i);
    EXPECT_EQ(Compose(R::kEqual, r), RelationSet::Of(r));
    EXPECT_EQ(Compose(r, R::kEqual), RelationSet::Of(r));
  }
}

TEST(CompositionTest, CompositionsNonEmpty) {
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_FALSE(Compose(static_cast<R>(i), static_cast<R>(j)).empty());
    }
  }
}

TEST(CompositionTest, ConverseAntiHomomorphism) {
  // conv(r o s) == conv(s) o conv(r) for every pair.
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      R r = static_cast<R>(i);
      R s = static_cast<R>(j);
      EXPECT_EQ(Compose(r, s).Converse(),
                Compose(RelationSet::Of(Inverse(s)),
                        RelationSet::Of(Inverse(r))))
          << FourIntRelationName(r) << " o " << FourIntRelationName(s);
    }
  }
}

TEST(CompositionTest, ContainsWitnessRelation) {
  // r o conv(r) must allow equality-compatible outcomes: in particular,
  // r in r o EQ (already tested) and EQ in r o conv(r) whenever r can
  // relate x to some y (pick z = x).
  for (int i = 0; i < 8; ++i) {
    R r = static_cast<R>(i);
    EXPECT_TRUE(Compose(r, Inverse(r)).Contains(R::kEqual))
        << FourIntRelationName(r);
  }
}

TEST(CompositionTest, KnownEntries) {
  // inside o inside = inside (strict nesting composes).
  EXPECT_EQ(Compose(R::kInside, R::kInside), RelationSet::Of(R::kInside));
  // contains o contains = contains.
  EXPECT_EQ(Compose(R::kContains, R::kContains),
            RelationSet::Of(R::kContains));
  // disjoint o contains = disjoint: x disjoint y, y contains z => z inside
  // y, so x disjoint z.
  EXPECT_EQ(Compose(R::kDisjoint, R::kContains),
            RelationSet::Of(R::kDisjoint));
  // inside o disjoint = disjoint.
  EXPECT_EQ(Compose(R::kInside, R::kDisjoint),
            RelationSet::Of(R::kDisjoint));
  // meet o meet admits disjoint, meet, overlap, coveredBy, covers, equal —
  // but never strict containment.
  RelationSet mm = Compose(R::kMeet, R::kMeet);
  EXPECT_TRUE(mm.Contains(R::kDisjoint));
  EXPECT_TRUE(mm.Contains(R::kEqual));
  EXPECT_FALSE(mm.Contains(R::kInside));
  EXPECT_FALSE(mm.Contains(R::kContains));
}

TEST(NetworkTest, TransitivityPropagates) {
  RelationNetwork network(3);
  ASSERT_TRUE(network.Restrict(0, 1, RelationSet::Of(R::kInside)).ok());
  ASSERT_TRUE(network.Restrict(1, 2, RelationSet::Of(R::kInside)).ok());
  EXPECT_TRUE(network.PathConsistency());
  EXPECT_EQ(network.constraint(0, 2), RelationSet::Of(R::kInside));
  EXPECT_EQ(network.constraint(2, 0), RelationSet::Of(R::kContains));
}

TEST(NetworkTest, InconsistentCycleDetected) {
  // A inside B, B inside C, C inside A: impossible.
  RelationNetwork network(3);
  ASSERT_TRUE(network.Restrict(0, 1, RelationSet::Of(R::kInside)).ok());
  ASSERT_TRUE(network.Restrict(1, 2, RelationSet::Of(R::kInside)).ok());
  ASSERT_TRUE(network.Restrict(2, 0, RelationSet::Of(R::kInside)).ok());
  EXPECT_FALSE(network.PathConsistency());
  EXPECT_FALSE(network.IsSatisfiable());
}

TEST(NetworkTest, ConverseClash) {
  RelationNetwork network(2);
  ASSERT_TRUE(network.Restrict(0, 1, RelationSet::Of(R::kInside)).ok());
  // Restricting (1, 0) to inside clashes with the converse bookkeeping.
  ASSERT_TRUE(network.Restrict(1, 0, RelationSet::Of(R::kInside)).ok());
  EXPECT_TRUE(network.constraint(0, 1).empty());
  EXPECT_FALSE(network.IsSatisfiable());
}

TEST(NetworkTest, DisjunctiveSatisfiable) {
  // A (meet or overlap) B, B inside C, A disjoint-or-meet C: satisfiable:
  // pick A meet B, B inside C forces A (po,tpp,ntpp...) hmm — use a known
  // satisfiable combination and let the solver find a scenario.
  RelationNetwork network(3);
  ASSERT_TRUE(network
                  .Restrict(0, 1, RelationSet::Of(R::kMeet) |
                                      RelationSet::Of(R::kOverlap))
                  .ok());
  ASSERT_TRUE(network.Restrict(1, 2, RelationSet::Of(R::kInside)).ok());
  std::vector<std::vector<FourIntRelation>> scenario;
  EXPECT_TRUE(network.IsSatisfiable(&scenario));
  // The scenario respects the constraints and the composition table.
  EXPECT_TRUE(network.constraint(0, 1).Contains(scenario[0][1]));
  EXPECT_TRUE(Compose(scenario[0][1], scenario[1][2])
                  .Contains(scenario[0][2]));
}

TEST(NetworkTest, BacktrackingBeyondPathConsistency) {
  // A network needing branching: four variables, pairwise constraints
  // disjunctive. Just exercise the search path on a satisfiable instance.
  RelationNetwork network(4);
  RelationSet dc_or_po =
      RelationSet::Of(R::kDisjoint) | RelationSet::Of(R::kOverlap);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      ASSERT_TRUE(network.Restrict(i, j, dc_or_po).ok());
    }
  }
  std::vector<std::vector<FourIntRelation>> scenario;
  EXPECT_TRUE(network.IsSatisfiable(&scenario));
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(scenario[i][j] == R::kDisjoint ||
                  scenario[i][j] == R::kOverlap);
    }
  }
}

TEST(NetworkTest, ObservedInstancesAreConsistent) {
  // Relations measured from real instances always form satisfiable
  // networks — the geometric side validates the table.
  for (const SpatialInstance& instance :
       {Fig1aInstance(), Fig1bInstance(), Fig1cInstance(), Fig1dInstance(),
        Fig6Instance(), Fig7bInstance(), NestedInstance(),
        DisjointPairInstance()}) {
    Result<RelationNetwork> network = NetworkFromInstance(instance);
    ASSERT_TRUE(network.ok());
    EXPECT_TRUE(network->PathConsistency()) << network->DebugString();
    EXPECT_TRUE(network->IsSatisfiable());
  }
}

TEST(NetworkTest, RestrictValidatesIndices) {
  RelationNetwork network(2);
  EXPECT_FALSE(network.Restrict(0, 5, RelationSet::All()).ok());
  EXPECT_FALSE(network.Restrict(-1, 0, RelationSet::All()).ok());
}

TEST(NetworkTest, EmptyAndSingleton) {
  RelationNetwork empty(0);
  EXPECT_TRUE(empty.IsSatisfiable());
  RelationNetwork one(1);
  EXPECT_TRUE(one.PathConsistency());
  EXPECT_EQ(one.constraint(0, 0), RelationSet::Of(R::kEqual));
}

}  // namespace
}  // namespace topodb
