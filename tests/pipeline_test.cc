// The batched invariant pipeline: canonical-string cache exactness and the
// thread-pooled batch API (src/pipeline/).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/invariant/data.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/invariant_cache.h"
#include "src/pipeline/query_batch.h"
#include "src/region/fixtures.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

std::vector<SpatialInstance> MixedWorkload() {
  return {Fig1aInstance(),        Fig1bInstance(),
          Fig1cInstance(),        Fig1dInstance(),
          NestedInstance(),       *ChainInstance(4),
          *CombInstance(3),       *NestedRingsInstance(3),
          *RandomRectInstance(5, 40, 7), *RandomRectInstance(6, 40, 8)};
}

TEST(InvariantCacheTest, AgreesWithUncachedComputation) {
  InvariantCache cache;
  for (const SpatialInstance& instance : MixedWorkload()) {
    InvariantData data = *ComputeInvariant(instance);
    Result<std::string> direct = CanonicalInvariantString(data);
    Result<std::string> cached = cache.Canonical(data);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(*direct, *cached);
    // Second lookup of the same structure must hit.
    EXPECT_EQ(*cache.Canonical(data), *direct);
  }
  const InvariantCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, MixedWorkload().size());
  EXPECT_EQ(stats.hits, MixedWorkload().size());
}

TEST(InvariantCacheTest, OptionVariantsAreCachedSeparately) {
  InvariantCache cache;
  InvariantData data = *ComputeInvariant(Fig1aInstance());
  CanonicalOptions isotopy;
  isotopy.allow_reflection = false;
  EXPECT_EQ(*cache.Canonical(data), *CanonicalInvariantString(data));
  EXPECT_EQ(*cache.Canonical(data, isotopy),
            *CanonicalInvariantString(data, isotopy));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(InvariantCacheTest, CachedPredicatesMatchDirectOnes) {
  InvariantCache cache;
  InvariantData a = *ComputeInvariant(*CombInstance(2));
  InvariantData b = *ComputeInvariant(*CombInstance(3));
  EXPECT_EQ(*cache.Isomorphic(a, a), *Isomorphic(a, a));
  EXPECT_EQ(*cache.Isomorphic(a, b), *Isomorphic(a, b));
  EXPECT_EQ(*cache.IsotopyEquivalent(a, b), *IsotopyEquivalent(a, b));
}

TEST(InvariantCacheTest, MalformedDataErrorsAndIsNotCached) {
  InvariantData bad;
  bad.region_names = {"A"};
  bad.vertices.push_back({CellLabel{Sign::kExterior}});
  bad.edges.push_back({0, 0, CellLabel{Sign::kBoundary}});
  // next_ccw/face_of_dart left empty: dart table size mismatch.
  InvariantCache cache;
  EXPECT_FALSE(cache.Canonical(bad).ok());
  EXPECT_FALSE(cache.Canonical(bad).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(StructuralKeyTest, LengthPrefixKeepsNameListsDistinct) {
  InvariantData a, b;
  a.region_names = {"a,b"};
  b.region_names = {"a", "b"};
  EXPECT_NE(StructuralKey(a), StructuralKey(b));
}

TEST(BatchTest, MatchesSerialComputation) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  for (int threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    auto results = BatchComputeInvariants(instances, options);
    ASSERT_EQ(results.size(), instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      Result<TopologicalInvariant> serial =
          TopologicalInvariant::Compute(instances[i]);
      ASSERT_TRUE(serial.ok());
      EXPECT_EQ(results[i]->canonical(), serial->canonical()) << i;
    }
  }
}

TEST(BatchTest, SharedCacheDeduplicatesRepeatedStructures) {
  std::vector<SpatialInstance> instances(8, *CombInstance(2));
  InvariantCache cache;
  BatchOptions options;
  options.num_threads = 4;
  options.cache = &cache;
  auto results = BatchComputeInvariants(instances, options);
  const std::string expected =
      TopologicalInvariant::Compute(instances[0])->canonical();
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->canonical(), expected);
  }
  // All eight instances share one structure: one cache entry, and every
  // lookup is accounted for.
  EXPECT_EQ(cache.size(), 1u);
  const InvariantCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, instances.size());
}

TEST(BatchTest, AllPairsBroadPhaseProducesSameInvariants) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  BatchOptions grid;
  BatchOptions all_pairs;
  all_pairs.arrangement.broad_phase = BroadPhase::kAllPairs;
  auto with_grid = BatchComputeInvariants(instances, grid);
  auto with_all_pairs = BatchComputeInvariants(instances, all_pairs);
  for (size_t i = 0; i < instances.size(); ++i) {
    ASSERT_TRUE(with_grid[i].ok());
    ASSERT_TRUE(with_all_pairs[i].ok());
    EXPECT_EQ(with_grid[i]->canonical(), with_all_pairs[i]->canonical()) << i;
  }
}

TEST(BatchTest, EmptyBatchReturnsNoResults) {
  EXPECT_TRUE(BatchComputeInvariants({}).empty());
}

TEST(BatchTest, DefaultThreadCountHandlesLargeBatch) {
  std::vector<SpatialInstance> instances;
  for (int seed = 1; seed <= 24; ++seed) {
    instances.push_back(*RandomRectInstance(4, 30, seed));
  }
  auto results = BatchComputeInvariants(instances);
  for (const auto& result : results) EXPECT_TRUE(result.ok());
}

// --- Batched query evaluation (src/pipeline/query_batch.h) ---

TEST(QueryBatchTest, ManyQueriesOneEngineMatchSerial) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  const std::vector<std::string> queries = {
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)",
      "forall region r . connect(r, r)",
      "connect(A, B)",
      "exists name a . exists name b . not (a = b) and overlap(a, b)",
      "connect(A, Z)",   // Unknown name: per-query NotFound, not batch-fatal.
      "frobnicate(A)",   // Parse error: ditto.
  };
  for (int threads : {1, 4}) {
    QueryBatchOptions options;
    options.num_threads = threads;
    const std::vector<Result<bool>> results =
        BatchEvaluateQueries(engine, queries, options);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const Result<bool> serial = engine.Evaluate(queries[i]);
      ASSERT_EQ(results[i].ok(), serial.ok()) << queries[i];
      if (serial.ok()) {
        EXPECT_EQ(*results[i], *serial) << queries[i];
      } else {
        EXPECT_EQ(results[i].status().code(), serial.status().code())
            << queries[i];
      }
    }
  }
}

TEST(QueryBatchTest, OneQueryManyInstancesMatchesSerial) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  const std::string query = "forall region r . connect(r, r)";
  for (int threads : {1, 4}) {
    QueryBatchOptions options;
    options.num_threads = threads;
    const std::vector<Result<bool>> results =
        BatchEvaluateQuery(query, instances, options);
    ASSERT_EQ(results.size(), instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      QueryEngine engine = *QueryEngine::Build(instances[i]);
      const Result<bool> serial = engine.Evaluate(query);
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      ASSERT_TRUE(serial.ok());
      EXPECT_EQ(*results[i], *serial) << i;
    }
  }
}

TEST(QueryBatchTest, MalformedQueryFailsEveryInstanceUniformly) {
  const std::vector<SpatialInstance> instances = {Fig1aInstance(),
                                                  Fig1cInstance()};
  const std::vector<Result<bool>> results =
      BatchEvaluateQuery("exists region . true", instances);
  ASSERT_EQ(results.size(), instances.size());
  for (const Result<bool>& result : results) {
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

TEST(QueryBatchTest, EmptyBatchesReturnNoResults) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  EXPECT_TRUE(BatchEvaluateQueries(engine, std::vector<std::string>{}).empty());
  EXPECT_TRUE(
      BatchEvaluateQuery("true", std::vector<SpatialInstance>{}).empty());
}

// --- Deadlines, cancellation, worker-count validation, metrics ---

TEST(BatchDeadlineTest, ExpiredDeadlineFailsEveryItemIndividually) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  for (int threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    options.deadline = Deadline::Expired();
    auto results = BatchComputeInvariants(instances, options);
    ASSERT_EQ(results.size(), instances.size());
    for (const auto& result : results) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    }
  }
}

TEST(BatchDeadlineTest, GenerousDeadlineLeavesResultsByteIdentical) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  BatchOptions plain;
  BatchOptions bounded;
  bounded.deadline = Deadline::AfterMillis(3'600'000);
  auto without = BatchComputeInvariants(instances, plain);
  auto with = BatchComputeInvariants(instances, bounded);
  ASSERT_EQ(without.size(), with.size());
  for (size_t i = 0; i < without.size(); ++i) {
    ASSERT_TRUE(without[i].ok());
    ASSERT_TRUE(with[i].ok()) << with[i].status().ToString();
    EXPECT_EQ(with[i]->canonical(), without[i]->canonical()) << i;
  }
}

TEST(BatchDeadlineTest, OnePathologicalItemFailsAloneRestByteIdentical) {
  // Tiny items first, one huge all-pairs arrangement last (sequential
  // workers): the fast items complete far inside the deadline, the
  // pathological one blows it and hits the post-arrangement checkpoint.
  // Margins are ~50x on both sides of the 50ms budget, so the test stays
  // deterministic across machine speeds and sanitizer slowdowns. The
  // undeadlined reference run covers only the fast items — completing the
  // pathological invariant for real would dominate the suite's runtime,
  // and the byte-identical claim is about the unaffected slots.
  const std::vector<SpatialInstance> fast = {
      Fig1aInstance(), Fig1cInstance(), NestedInstance(), *ChainInstance(3)};
  std::vector<SpatialInstance> instances = fast;
  const size_t pathological = instances.size();
  instances.push_back(*RandomRectInstance(128, 12 * 128, 42));

  BatchOptions options;
  options.num_threads = 1;
  options.arrangement.broad_phase = BroadPhase::kAllPairs;
  auto unbounded = BatchComputeInvariants(fast, options);
  options.deadline = Deadline::AfterMillis(50);
  auto bounded = BatchComputeInvariants(instances, options);

  ASSERT_EQ(bounded.size(), instances.size());
  ASSERT_FALSE(bounded[pathological].ok());
  EXPECT_EQ(bounded[pathological].status().code(),
            StatusCode::kDeadlineExceeded);
  for (size_t i = 0; i < pathological; ++i) {
    ASSERT_TRUE(unbounded[i].ok());
    ASSERT_TRUE(bounded[i].ok()) << i << ": " << bounded[i].status().ToString();
    EXPECT_EQ(bounded[i]->canonical(), unbounded[i]->canonical()) << i;
  }
}

TEST(BatchDeadlineTest, PreCancelledTokenFailsEveryItem) {
  CancelToken token;
  token.Cancel();
  BatchOptions options;
  options.num_threads = 4;
  options.cancel = &token;
  auto results = BatchComputeInvariants(MixedWorkload(), options);
  for (const auto& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(BatchDeadlineTest, NegativeThreadCountFailsEveryItemWithInvalidArgument) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  BatchOptions options;
  options.num_threads = -2;
  auto results = BatchComputeInvariants(instances, options);
  ASSERT_EQ(results.size(), instances.size());
  for (const auto& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BatchMetricsTest, RecordsPerStageTimingsAndItemCounts) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  MetricsRegistry registry;
  InvariantCache cache;
  BatchOptions options;
  options.cache = &cache;
  options.metrics = &registry;
  auto results = BatchComputeInvariants(instances, options);
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  EXPECT_EQ(registry.counter("pipeline.items")->value(), instances.size());
  EXPECT_EQ(registry.counter("pipeline.failures")->value(), 0u);
  // Every successful item passes through every stage exactly once.
  EXPECT_EQ(registry.histogram("pipeline.arrangement_us")->count(),
            instances.size());
  EXPECT_EQ(registry.histogram("pipeline.extract_us")->count(),
            instances.size());
  EXPECT_EQ(registry.histogram("pipeline.canonical_us")->count(),
            instances.size());
  EXPECT_EQ(registry.histogram("pipeline.batch_us")->count(), 1u);
  // Cache traffic and footprint surfaced as counters/gauges.
  const InvariantCache::Stats stats = cache.stats();
  EXPECT_EQ(registry.counter("pipeline.cache_hits")->value(), stats.hits);
  EXPECT_EQ(registry.counter("pipeline.cache_misses")->value(), stats.misses);
  EXPECT_EQ(registry.gauge("invariant_cache.entries")->value(),
            static_cast<int64_t>(cache.size()));
  EXPECT_GT(registry.gauge("invariant_cache.bytes")->value(), 0);
  // Arrangement metrics propagate through BatchOptions::metrics.
  EXPECT_EQ(registry.counter("arrangement.builds")->value(), instances.size());
  EXPECT_GT(registry.counter("arrangement.candidate_pairs")->value(), 0u);
}

TEST(QueryBatchDeadlineTest, ExpiredDeadlineFailsEveryQuery) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  const std::vector<std::string> queries = {"connect(A, B)", "connect(A, C)",
                                            "forall region r . connect(r, r)"};
  for (int threads : {1, 4}) {
    QueryBatchOptions options;
    options.num_threads = threads;
    options.deadline = Deadline::Expired();
    const std::vector<Result<bool>> results =
        BatchEvaluateQueries(engine, queries, options);
    ASSERT_EQ(results.size(), queries.size());
    for (const Result<bool>& result : results) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    }
  }
}

TEST(QueryBatchDeadlineTest, ExpiredDeadlineFailsEveryInstance) {
  const std::vector<SpatialInstance> instances = {Fig1aInstance(),
                                                  Fig1cInstance()};
  QueryBatchOptions options;
  options.deadline = Deadline::Expired();
  const std::vector<Result<bool>> results =
      BatchEvaluateQuery("connect(A, B)", instances, options);
  ASSERT_EQ(results.size(), instances.size());
  for (const Result<bool>& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(QueryBatchDeadlineTest, GenerousDeadlineMatchesUndeadlinedVerdicts) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  const std::vector<std::string> queries = {
      "connect(A, B)", "forall region r . connect(r, r)",
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)"};
  QueryBatchOptions bounded;
  bounded.deadline = Deadline::AfterMillis(3'600'000);
  const std::vector<Result<bool>> with =
      BatchEvaluateQueries(engine, queries, bounded);
  const std::vector<Result<bool>> without =
      BatchEvaluateQueries(engine, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(with[i].ok()) << with[i].status().ToString();
    ASSERT_TRUE(without[i].ok());
    EXPECT_EQ(*with[i], *without[i]) << queries[i];
  }
}

TEST(QueryBatchDeadlineTest, NegativeThreadCountFailsEverySlot) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  const std::vector<std::string> queries = {"connect(A, B)", "connect(A, C)"};
  QueryBatchOptions options;
  options.num_threads = -1;
  const std::vector<Result<bool>> per_query =
      BatchEvaluateQueries(engine, queries, options);
  ASSERT_EQ(per_query.size(), queries.size());
  for (const Result<bool>& result : per_query) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  const std::vector<SpatialInstance> instances = {Fig1aInstance()};
  const std::vector<Result<bool>> per_instance =
      BatchEvaluateQuery("connect(A, B)", instances, options);
  ASSERT_EQ(per_instance.size(), instances.size());
  EXPECT_EQ(per_instance[0].status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBatchMetricsTest, CountsItemsAndEngineBuilds) {
  const std::vector<SpatialInstance> instances = {Fig1aInstance(),
                                                  Fig1cInstance()};
  MetricsRegistry registry;
  QueryBatchOptions options;
  options.metrics = &registry;
  const std::vector<Result<bool>> results =
      BatchEvaluateQuery("connect(A, B)", instances, options);
  for (const Result<bool>& result : results) ASSERT_TRUE(result.ok());
  EXPECT_EQ(registry.counter("query_batch.items")->value(), instances.size());
  EXPECT_EQ(registry.counter("query_batch.failures")->value(), 0u);
  EXPECT_EQ(registry.histogram("query_batch.engine_build_us")->count(),
            instances.size());
  // The merged EvalOptions carry the registry into each evaluation.
  EXPECT_EQ(registry.counter("query.evaluations")->value(), instances.size());
  EXPECT_EQ(registry.histogram("query.eval_us")->count(), instances.size());
}

}  // namespace
}  // namespace topodb
