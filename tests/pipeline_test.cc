// The batched invariant pipeline: canonical-string cache exactness and the
// thread-pooled batch API (src/pipeline/).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/invariant/data.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/invariant_cache.h"
#include "src/pipeline/query_batch.h"
#include "src/region/fixtures.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

std::vector<SpatialInstance> MixedWorkload() {
  return {Fig1aInstance(),        Fig1bInstance(),
          Fig1cInstance(),        Fig1dInstance(),
          NestedInstance(),       *ChainInstance(4),
          *CombInstance(3),       *NestedRingsInstance(3),
          *RandomRectInstance(5, 40, 7), *RandomRectInstance(6, 40, 8)};
}

TEST(InvariantCacheTest, AgreesWithUncachedComputation) {
  InvariantCache cache;
  for (const SpatialInstance& instance : MixedWorkload()) {
    InvariantData data = *ComputeInvariant(instance);
    Result<std::string> direct = CanonicalInvariantString(data);
    Result<std::string> cached = cache.Canonical(data);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(*direct, *cached);
    // Second lookup of the same structure must hit.
    EXPECT_EQ(*cache.Canonical(data), *direct);
  }
  const InvariantCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, MixedWorkload().size());
  EXPECT_EQ(stats.hits, MixedWorkload().size());
}

TEST(InvariantCacheTest, OptionVariantsAreCachedSeparately) {
  InvariantCache cache;
  InvariantData data = *ComputeInvariant(Fig1aInstance());
  CanonicalOptions isotopy;
  isotopy.allow_reflection = false;
  EXPECT_EQ(*cache.Canonical(data), *CanonicalInvariantString(data));
  EXPECT_EQ(*cache.Canonical(data, isotopy),
            *CanonicalInvariantString(data, isotopy));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(InvariantCacheTest, CachedPredicatesMatchDirectOnes) {
  InvariantCache cache;
  InvariantData a = *ComputeInvariant(*CombInstance(2));
  InvariantData b = *ComputeInvariant(*CombInstance(3));
  EXPECT_EQ(*cache.Isomorphic(a, a), *Isomorphic(a, a));
  EXPECT_EQ(*cache.Isomorphic(a, b), *Isomorphic(a, b));
  EXPECT_EQ(*cache.IsotopyEquivalent(a, b), *IsotopyEquivalent(a, b));
}

TEST(InvariantCacheTest, MalformedDataErrorsAndIsNotCached) {
  InvariantData bad;
  bad.region_names = {"A"};
  bad.vertices.push_back({CellLabel{Sign::kExterior}});
  bad.edges.push_back({0, 0, CellLabel{Sign::kBoundary}});
  // next_ccw/face_of_dart left empty: dart table size mismatch.
  InvariantCache cache;
  EXPECT_FALSE(cache.Canonical(bad).ok());
  EXPECT_FALSE(cache.Canonical(bad).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(StructuralKeyTest, LengthPrefixKeepsNameListsDistinct) {
  InvariantData a, b;
  a.region_names = {"a,b"};
  b.region_names = {"a", "b"};
  EXPECT_NE(StructuralKey(a), StructuralKey(b));
}

TEST(BatchTest, MatchesSerialComputation) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  for (int threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    auto results = BatchComputeInvariants(instances, options);
    ASSERT_EQ(results.size(), instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      Result<TopologicalInvariant> serial =
          TopologicalInvariant::Compute(instances[i]);
      ASSERT_TRUE(serial.ok());
      EXPECT_EQ(results[i]->canonical(), serial->canonical()) << i;
    }
  }
}

TEST(BatchTest, SharedCacheDeduplicatesRepeatedStructures) {
  std::vector<SpatialInstance> instances(8, *CombInstance(2));
  InvariantCache cache;
  BatchOptions options;
  options.num_threads = 4;
  options.cache = &cache;
  auto results = BatchComputeInvariants(instances, options);
  const std::string expected =
      TopologicalInvariant::Compute(instances[0])->canonical();
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->canonical(), expected);
  }
  // All eight instances share one structure: one cache entry, and every
  // lookup is accounted for.
  EXPECT_EQ(cache.size(), 1u);
  const InvariantCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, instances.size());
}

TEST(BatchTest, AllPairsBroadPhaseProducesSameInvariants) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  BatchOptions grid;
  BatchOptions all_pairs;
  all_pairs.arrangement.broad_phase = BroadPhase::kAllPairs;
  auto with_grid = BatchComputeInvariants(instances, grid);
  auto with_all_pairs = BatchComputeInvariants(instances, all_pairs);
  for (size_t i = 0; i < instances.size(); ++i) {
    ASSERT_TRUE(with_grid[i].ok());
    ASSERT_TRUE(with_all_pairs[i].ok());
    EXPECT_EQ(with_grid[i]->canonical(), with_all_pairs[i]->canonical()) << i;
  }
}

TEST(BatchTest, EmptyBatchReturnsNoResults) {
  EXPECT_TRUE(BatchComputeInvariants({}).empty());
}

TEST(BatchTest, DefaultThreadCountHandlesLargeBatch) {
  std::vector<SpatialInstance> instances;
  for (int seed = 1; seed <= 24; ++seed) {
    instances.push_back(*RandomRectInstance(4, 30, seed));
  }
  auto results = BatchComputeInvariants(instances);
  for (const auto& result : results) EXPECT_TRUE(result.ok());
}

// --- Batched query evaluation (src/pipeline/query_batch.h) ---

TEST(QueryBatchTest, ManyQueriesOneEngineMatchSerial) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  const std::vector<std::string> queries = {
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)",
      "forall region r . connect(r, r)",
      "connect(A, B)",
      "exists name a . exists name b . not (a = b) and overlap(a, b)",
      "connect(A, Z)",   // Unknown name: per-query NotFound, not batch-fatal.
      "frobnicate(A)",   // Parse error: ditto.
  };
  for (int threads : {1, 4}) {
    QueryBatchOptions options;
    options.num_threads = threads;
    const std::vector<Result<bool>> results =
        BatchEvaluateQueries(engine, queries, options);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const Result<bool> serial = engine.Evaluate(queries[i]);
      ASSERT_EQ(results[i].ok(), serial.ok()) << queries[i];
      if (serial.ok()) {
        EXPECT_EQ(*results[i], *serial) << queries[i];
      } else {
        EXPECT_EQ(results[i].status().code(), serial.status().code())
            << queries[i];
      }
    }
  }
}

TEST(QueryBatchTest, OneQueryManyInstancesMatchesSerial) {
  const std::vector<SpatialInstance> instances = MixedWorkload();
  const std::string query = "forall region r . connect(r, r)";
  for (int threads : {1, 4}) {
    QueryBatchOptions options;
    options.num_threads = threads;
    const std::vector<Result<bool>> results =
        BatchEvaluateQuery(query, instances, options);
    ASSERT_EQ(results.size(), instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      QueryEngine engine = *QueryEngine::Build(instances[i]);
      const Result<bool> serial = engine.Evaluate(query);
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      ASSERT_TRUE(serial.ok());
      EXPECT_EQ(*results[i], *serial) << i;
    }
  }
}

TEST(QueryBatchTest, MalformedQueryFailsEveryInstanceUniformly) {
  const std::vector<SpatialInstance> instances = {Fig1aInstance(),
                                                  Fig1cInstance()};
  const std::vector<Result<bool>> results =
      BatchEvaluateQuery("exists region . true", instances);
  ASSERT_EQ(results.size(), instances.size());
  for (const Result<bool>& result : results) {
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

TEST(QueryBatchTest, EmptyBatchesReturnNoResults) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  EXPECT_TRUE(BatchEvaluateQueries(engine, std::vector<std::string>{}).empty());
  EXPECT_TRUE(
      BatchEvaluateQuery("true", std::vector<SpatialInstance>{}).empty());
}

}  // namespace
}  // namespace topodb
