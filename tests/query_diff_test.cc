// Differential properties of the query layer: the baseline (byte-per-cell)
// evaluator, the bitset evaluator and its parallel fan-out must produce
// identical verdicts AND identical error points on every input, and the
// name-level atoms must agree with verdicts derived independently from the
// thematic mapping's RegionFaces table. These suites are what licenses
// every optimization in eval.cc: any divergence is a bug in one of the
// evaluators, never acceptable drift.

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/invariant/data.h"
#include "src/query/eval.h"
#include "src/query/parser.h"
#include "src/region/fixtures.h"
#include "src/thematic/thematic.h"
#include "src/workload/generators.h"

namespace topodb {
namespace {

// Name-generic corpus: only quantified variables, so every instance —
// whatever its region names — can answer each query.
const char* const kGenericQueries[] = {
    "forall region r . connect(r, r)",
    "exists region r . forall name a . subset(r, a)",
    "forall name a . exists region r . subset(r, a) and connect(r, a)",
    "exists name a . exists name b . not (a = b) and overlap(a, b)",
    "forall name a . forall name b . (not (a = b)) implies "
    "(connect(a, b) iff connect(b, a))",
    "exists cell c . forall name a . subset(c, a)",
    "forall cell c . exists region r . subset(c, r)",
};

std::vector<SpatialInstance> DiffWorkload() {
  std::vector<SpatialInstance> instances = {
      Fig1aInstance(),  Fig1bInstance(),       Fig1cInstance(),
      Fig1dInstance(),  NestedInstance(),      DisjointPairInstance(),
      *ChainInstance(3), *CombInstance(2),     *NestedRingsInstance(3),
      *FlowerInstance(3)};
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    instances.push_back(*RandomRectInstance(3 + seed % 3, 40, seed));
  }
  return instances;
}

// Evaluates the query under every strategy (baseline, bitset, bitset with
// a 3-thread fan-out) and asserts the outcomes are interchangeable: same
// verdict on success, same status code and message on failure.
void ExpectStrategiesAgree(const QueryEngine& engine, const std::string& query,
                           const EvalOptions& base = {}) {
  EvalOptions baseline = base;
  baseline.strategy = EvalStrategy::kBaseline;
  EvalOptions bitset = base;
  bitset.strategy = EvalStrategy::kBitset;
  EvalOptions threaded = bitset;
  threaded.num_threads = 3;

  Result<bool> a = engine.Evaluate(query, baseline);
  Result<bool> b = engine.Evaluate(query, bitset);
  ASSERT_EQ(a.ok(), b.ok()) << query << "\n baseline: " << a.status().ToString()
                            << "\n bitset:   " << b.status().ToString();
  if (a.ok()) {
    EXPECT_EQ(*a, *b) << query;
    // The parallel fan-out splits the budget per binding, so its error
    // points legitimately differ; verdicts are only required to match on
    // evaluations that succeed sequentially.
    Result<bool> c = engine.Evaluate(query, threaded);
    ASSERT_TRUE(c.ok()) << query << "\n threaded: " << c.status().ToString();
    EXPECT_EQ(*a, *c) << query;
  } else {
    EXPECT_EQ(a.status().code(), b.status().code()) << query;
    EXPECT_EQ(a.status().ToString(), b.status().ToString()) << query;
  }
}

TEST(QueryDiffTest, StrategiesAgreeOnGenericCorpus) {
  for (const SpatialInstance& instance : DiffWorkload()) {
    QueryEngine engine = *QueryEngine::Build(instance);
    for (const char* query : kGenericQueries) {
      ExpectStrategiesAgree(engine, query);
    }
  }
}

TEST(QueryDiffTest, StrategiesAgreeOnPaperExamples) {
  const char* queries[] = {
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)",
      "exists cell c . subset(c, A) and subset(c, B) and subset(c, C)",
  };
  for (SpatialInstance instance : {Fig1aInstance(), Fig1bInstance()}) {
    QueryEngine engine = *QueryEngine::Build(instance);
    for (const char* query : queries) ExpectStrategiesAgree(engine, query);
  }
}

// The planner (EvalOptions::plan) is a pure rewrite stage: for every
// strategy and thread count, the planned evaluation must return exactly
// the verdict of the unplanned one. Run the full differential workload
// with and without planning, under each strategy, and require identical
// outcomes pairwise.
TEST(QueryDiffTest, PlannedMatchesUnplannedAcrossStrategiesAndWorkload) {
  for (const SpatialInstance& instance : DiffWorkload()) {
    QueryEngine engine = *QueryEngine::Build(instance);
    for (const char* query : kGenericQueries) {
      for (const EvalStrategy strategy :
           {EvalStrategy::kBaseline, EvalStrategy::kBitset}) {
        for (const int threads : {1, 3}) {
          EvalOptions unplanned;
          unplanned.strategy = strategy;
          unplanned.num_threads = threads;
          EvalOptions planned = unplanned;
          planned.plan = true;
          const Result<bool> u = engine.Evaluate(query, unplanned);
          const Result<bool> p = engine.Evaluate(query, planned);
          ASSERT_EQ(u.ok(), p.ok())
              << query << "\n unplanned: " << u.status().ToString()
              << "\n planned:   " << p.status().ToString();
          if (u.ok()) EXPECT_EQ(*u, *p) << query;
        }
      }
      // The planned path must also satisfy the cross-strategy agreement
      // contract on its own.
      EvalOptions plan_base;
      plan_base.plan = true;
      ExpectStrategiesAgree(engine, query, plan_base);
    }
  }
}

// Budget accounting is part of the observable semantics: for EVERY budget
// value, both strategies must fail at the same point with the same message
// (the budget is charged per disc value, after the disc check, so the
// exhaustion point is a topological invariant of the instance — not an
// artifact of which evaluator enumerates).
TEST(QueryDiffTest, BudgetErrorPointsAreStrategyIndependent) {
  for (SpatialInstance instance :
       {Fig1aInstance(), NestedInstance(), *CombInstance(2)}) {
    QueryEngine engine = *QueryEngine::Build(instance);
    for (int64_t budget = 1; budget <= 12; ++budget) {
      EvalOptions options;
      options.max_region_candidates = budget;
      ExpectStrategiesAgree(engine, "forall region r . connect(r, r)",
                            options);
    }
  }
}

TEST(QueryDiffTest, BudgetErrorMessageNamesTheLimit) {
  QueryEngine engine = *QueryEngine::Build(Fig1aInstance());
  EvalOptions options;
  options.max_region_candidates = 2;
  Result<bool> result =
      engine.Evaluate("forall region r . connect(r, r)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("max_region_candidates=2"),
            std::string::npos)
      << result.status().ToString();
}

TEST(QueryDiffTest, EnumerationStepsErrorPointsAreStrategyIndependent) {
  QueryEngine engine = *QueryEngine::Build(Fig1bInstance());
  for (int64_t steps : {int64_t{1}, int64_t{7}, int64_t{50}, int64_t{400}}) {
    EvalOptions options;
    options.max_enumeration_steps = steps;
    ExpectStrategiesAgree(engine, "forall region r . connect(r, r)", options);
  }
}

TEST(QueryDiffTest, StepsErrorMessageNamesTheLimit) {
  QueryEngine engine = *QueryEngine::Build(Fig1bInstance());
  EvalOptions options;
  options.max_enumeration_steps = 7;
  Result<bool> result =
      engine.Evaluate("forall region r . connect(r, r)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("max_enumeration_steps=7"),
            std::string::npos)
      << result.status().ToString();
}

// --- IsDiscValue: reference vs memoized bitset implementation ---

// Exhaustively sweeps every subset of faces on small instances; the
// reference (byte-per-cell) overload, the memoized CellSet overload, and a
// repeated (memo-hit) call must agree on both the verdict and the
// completed cell set.
TEST(QueryDiffTest, DiscValueOverloadsAgreeOnAllFaceSubsets) {
  for (SpatialInstance instance :
       {Fig1aInstance(), Fig1dInstance(), NestedInstance(),
        DisjointPairInstance(), *CombInstance(2),
        *RandomRectInstance(4, 40, 11)}) {
    QueryEngine engine = *QueryEngine::Build(instance);
    const int nf = static_cast<int>(engine.complex().faces().size());
    ASSERT_LE(nf, 16) << "subset sweep would explode";
    for (uint32_t bits = 0; bits < (uint32_t{1} << nf); ++bits) {
      std::vector<char> face_set(nf, 0);
      CellSet face_bits(nf);
      for (int f = 0; f < nf; ++f) {
        if (bits >> f & 1) {
          face_set[f] = 1;
          face_bits.Set(f);
        }
      }
      std::vector<char> completed_ref;
      CellSet completed_bits;
      const bool ref = engine.IsDiscValue(face_set, &completed_ref);
      const bool fast = engine.IsDiscValue(face_bits, &completed_bits);
      ASSERT_EQ(ref, fast) << "face set " << bits;
      if (ref) {
        EXPECT_EQ(CellSet::FromCharVector(completed_ref), completed_bits)
            << "face set " << bits;
      }
      // Second call hits the memo; same answer.
      CellSet completed_again;
      ASSERT_EQ(engine.IsDiscValue(face_bits, &completed_again), fast);
      if (fast) EXPECT_EQ(completed_again, completed_bits);
    }
  }
}

// Regression net for the completion rule (the dart-less-vertex bugfix): a
// vertex joins a completion iff it has AT LEAST ONE incident face and all
// of its incident faces are chosen — the vacuous form ("all incident
// faces chosen", true for a dart-less vertex) would poison every
// completion with isolated cells. The arrangement never emits dart-less
// vertices, so the guard itself is unreachable through Build; what is
// testable, and what this test pins exhaustively, is the non-vacuous rule
// against ground truth recomputed here straight from the complex's darts.
TEST(QueryDiffTest, CompletedVerticesMatchIncidentFaceRule) {
  for (SpatialInstance instance :
       {Fig1aInstance(), NestedInstance(), *CombInstance(2)}) {
    QueryEngine engine = *QueryEngine::Build(instance);
    const CellComplex& complex = engine.complex();
    const int nv = static_cast<int>(complex.vertices().size());
    const int ne = static_cast<int>(complex.edges().size());
    const int nf = static_cast<int>(complex.faces().size());
    // Ground truth: incident faces per vertex, via the darts around it.
    std::vector<std::set<int>> vertex_faces(nv);
    for (int v = 0; v < nv; ++v) {
      for (int d : complex.vertices()[v].darts) {
        vertex_faces[v].insert(complex.darts()[d].face);
      }
      ASSERT_FALSE(vertex_faces[v].empty())
          << "the arrangement emitted a dart-less vertex";
    }
    for (uint32_t bits = 0; bits < (uint32_t{1} << nf); ++bits) {
      std::vector<char> face_set(nf, 0);
      for (int f = 0; f < nf; ++f) face_set[f] = (bits >> f) & 1;
      std::vector<char> completed;
      if (!engine.IsDiscValue(face_set, &completed)) continue;
      ASSERT_EQ(completed.size(), static_cast<size_t>(nv + ne + nf));
      for (int v = 0; v < nv; ++v) {
        bool all_chosen = true;
        for (int f : vertex_faces[v]) all_chosen &= face_set[f] != 0;
        EXPECT_EQ(completed[v] != 0, all_chosen)
            << "vertex " << v << ", face set " << bits;
      }
    }
  }
}

// --- Thematic cross-check ---

// Face-level verdicts derived from the thematic mapping's RegionFaces
// table must agree with the evaluators' cell-level atoms: interiors are
// open, so ext(a) is a subset of / intersects ext(b) iff a's interior
// faces are a subset of / intersect b's (edge and vertex cells interior
// to a region are determined by its faces). Queries are built with
// QuoteQueryName, so the check also covers non-identifier names.
TEST(QueryDiffTest, AtomsAgreeWithThematicRegionFaces) {
  for (const SpatialInstance& instance : DiffWorkload()) {
    const ThematicInstance theme = ToThematic(*ComputeInvariant(instance));
    // Interior faces per region name.
    std::map<std::string, std::set<std::string>> faces_of;
    for (const std::string& name : instance.names()) faces_of[name];
    for (const auto& row : theme.region_faces.rows()) {
      faces_of[row[0]].insert(row[1]);
    }
    QueryEngine engine = *QueryEngine::Build(instance);
    for (const auto& [a, fa] : faces_of) {
      for (const auto& [b, fb] : faces_of) {
        const std::string qa = QuoteQueryName(a), qb = QuoteQueryName(b);
        const bool face_subset =
            std::includes(fb.begin(), fb.end(), fa.begin(), fa.end());
        Result<bool> subset =
            engine.Evaluate("subset(" + qa + ", " + qb + ")");
        ASSERT_TRUE(subset.ok()) << subset.status().ToString();
        EXPECT_EQ(*subset, face_subset) << a << " vs " << b;
        std::vector<std::string> common;
        std::set_intersection(fa.begin(), fa.end(), fb.begin(), fb.end(),
                              std::back_inserter(common));
        // Interiors intersect iff the pair is neither disjoint nor meet
        // (the only 4-intersection classes with disjoint interiors).
        Result<bool> interiors_meet = engine.Evaluate(
            "not disjoint(" + qa + ", " + qb + ") and not meet(" + qa + ", " +
            qb + ")");
        ASSERT_TRUE(interiors_meet.ok())
            << interiors_meet.status().ToString();
        EXPECT_EQ(*interiors_meet, !common.empty()) << a << " vs " << b;
      }
    }
  }
}

}  // namespace
}  // namespace topodb
