// Exactness oracle for the floating-point-expansion predicate stage
// (src/base/expansion.h, DESIGN.md §5f). The stage's contract is absolute:
// it may decline an input ("envelope does not apply"), but whenever it
// answers, the sign must be bit-for-bit the sign the arbitrary-precision
// rational evaluation produces — including exact zeros. The tests check
// every error-free building block against BigInt/Rational arithmetic, then
// run the public predicate kernels against their exact counterparts over
// the same adversarial families as the filter differential suite:
// collinear triples, perturbations of 2^-k far below double noise, and
// small-denominator rational coordinates.

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/bigint.h"
#include "src/base/expansion.h"
#include "src/base/rational.h"
#include "src/geom/point.h"
#include "src/geom/predicates.h"

namespace topodb {
namespace {

using expansion_internal::DecomposeInteger;
using expansion_internal::ExpansionProduct;
using expansion_internal::ExpansionSum;
using expansion_internal::ScaleExpansionZeroElim;
using expansion_internal::SignOfExpansion;
using expansion_internal::TwoDiff;
using expansion_internal::TwoProduct;
using expansion_internal::TwoSum;
using expansion_internal::ZeroElim;

// Exact Rational value of a finite double: mantissa times a power of two.
Rational RationalFromDouble(double d) {
  int exp = 0;
  const double m = std::frexp(d, &exp);       // d == m * 2^exp, |m| in [0.5, 1)
  const int64_t mant = static_cast<int64_t>(std::ldexp(m, 53));  // exact
  const int e = exp - 53;
  if (e >= 0) return Rational(BigInt(mant).ShiftLeft(e), BigInt(1));
  return Rational(BigInt(mant), BigInt(1).ShiftLeft(-e));
}

// Exact rational value of an expansion, the reference for every kernel.
Rational ExpansionValue(int len, const double* e) {
  Rational sum(0);
  for (int i = 0; i < len; ++i) sum += RationalFromDouble(e[i]);
  return sum;
}

// A random double whose value is an integer times 2^exp_shift, so products
// and sums stay representable while still exercising many bit patterns.
double RandomComponent(std::mt19937_64& rng, int bits, int exp_shift) {
  const uint64_t mask = (bits >= 64) ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  const int64_t mag = static_cast<int64_t>(rng() & mask);
  const double v = static_cast<double>((rng() & 1) ? mag : -mag);
  return std::ldexp(v, exp_shift);
}

TEST(ExpansionKernelTest, TwoSumAndTwoDiffAreErrorFree) {
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 2000; ++iter) {
    const double a = RandomComponent(rng, 50, static_cast<int>(rng() % 60) - 30);
    const double b = RandomComponent(rng, 50, static_cast<int>(rng() % 60) - 30);
    double x, y;
    TwoSum(a, b, &x, &y);
    EXPECT_EQ(RationalFromDouble(x) + RationalFromDouble(y),
              RationalFromDouble(a) + RationalFromDouble(b));
    TwoDiff(a, b, &x, &y);
    EXPECT_EQ(RationalFromDouble(x) + RationalFromDouble(y),
              RationalFromDouble(a) - RationalFromDouble(b));
  }
}

TEST(ExpansionKernelTest, TwoProductIsErrorFree) {
  std::mt19937_64 rng(12);
  for (int iter = 0; iter < 2000; ++iter) {
    const double a = RandomComponent(rng, 52, static_cast<int>(rng() % 40) - 20);
    const double b = RandomComponent(rng, 52, static_cast<int>(rng() % 40) - 20);
    double x, y;
    TwoProduct(a, b, &x, &y);
    EXPECT_EQ(RationalFromDouble(x) + RationalFromDouble(y),
              RationalFromDouble(a) * RationalFromDouble(b))
        << a << " * " << b;
  }
}

TEST(ExpansionKernelTest, DecomposeIntegerRoundTrips) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 2000; ++iter) {
    // Up to 4 limbs, with runs of zero limbs to exercise zero elimination.
    const int limbs = 1 + static_cast<int>(rng() % 4);
    BigInt mag(0);
    for (int i = 0; i < limbs; ++i) {
      mag = mag.ShiftLeft(32);
      if (rng() % 3 != 0) mag = mag + BigInt(static_cast<int64_t>(rng() & 0xffffffffu));
    }
    const BigInt v = (rng() & 1) ? BigInt(0) - mag : mag;
    double comps[4];
    const int n = DecomposeInteger(v, comps);
    ASSERT_LE(n, 4);
    EXPECT_EQ(ExpansionValue(n, comps), Rational(v, BigInt(1)))
        << v.ToString();
    // Components must be nonoverlapping and increasing in magnitude.
    for (int i = 1; i < n; ++i) {
      EXPECT_LT(std::abs(comps[i - 1]), std::abs(comps[i]));
    }
  }
}

// Builds a random nonoverlapping expansion via DecomposeInteger.
int RandomExpansion(std::mt19937_64& rng, int max_limbs, double* out) {
  const int limbs = 1 + static_cast<int>(rng() % max_limbs);
  BigInt mag(0);
  for (int i = 0; i < limbs; ++i) {
    mag = mag.ShiftLeft(32) + BigInt(static_cast<int64_t>(rng() & 0xffffffffu));
  }
  const BigInt v = (rng() & 1) ? BigInt(0) - mag : mag;
  return DecomposeInteger(v, out);
}

TEST(ExpansionKernelTest, ExpansionSumIsExact) {
  std::mt19937_64 rng(14);
  for (int iter = 0; iter < 2000; ++iter) {
    double e[4], f[4], h[8];
    const int elen = RandomExpansion(rng, 4, e);
    const int flen = RandomExpansion(rng, 4, f);
    const Rational want = ExpansionValue(elen, e) + ExpansionValue(flen, f);
    const int hlen = ExpansionSum(elen, e, flen, f, h);
    ASSERT_LE(hlen, elen + flen);
    EXPECT_EQ(ExpansionValue(hlen, h), want);
    EXPECT_EQ(SignOfExpansion(hlen, h), want.sign());

    // In-place accumulate (h == e) must give the same value.
    double acc[8];
    for (int i = 0; i < elen; ++i) acc[i] = e[i];
    const int alen = ExpansionSum(elen, acc, flen, f, acc);
    EXPECT_EQ(ExpansionValue(alen, acc), want);
  }
}

TEST(ExpansionKernelTest, ScaleExpansionIsExact) {
  std::mt19937_64 rng(15);
  for (int iter = 0; iter < 2000; ++iter) {
    double e[4], h[8];
    const int elen = RandomExpansion(rng, 4, e);
    // Scale factors shaped like the lcm ratios the predicates use: exact
    // small integers, including 1.
    const double b = static_cast<double>(1 + (rng() % (uint64_t{1} << 40)));
    const Rational want = ExpansionValue(elen, e) * RationalFromDouble(b);
    const int hlen = ScaleExpansionZeroElim(elen, e, b, h);
    ASSERT_LE(hlen, 2 * elen);
    EXPECT_EQ(ExpansionValue(hlen, h), want);
  }
}

TEST(ExpansionKernelTest, ExpansionProductIsExact) {
  std::mt19937_64 rng(16);
  for (int iter = 0; iter < 1000; ++iter) {
    double e[4], f[4], h[32], scratch[8];
    const int elen = RandomExpansion(rng, 4, e);
    const int flen = RandomExpansion(rng, 4, f);
    const Rational want = ExpansionValue(elen, e) * ExpansionValue(flen, f);
    const int hlen = ExpansionProduct(elen, e, flen, f, h, scratch);
    ASSERT_LE(hlen, 2 * elen * flen);
    EXPECT_EQ(ExpansionValue(hlen, h), want);
    EXPECT_EQ(SignOfExpansion(hlen, h), want.sign());
  }
}

TEST(ExpansionKernelTest, ZeroElimDropsZerosOnly) {
  double h[6] = {0.0, 1.0, 0.0, 256.0, 0.0, 65536.0};
  const int n = ZeroElim(6, h);
  ASSERT_EQ(n, 3);
  EXPECT_EQ(h[0], 1.0);
  EXPECT_EQ(h[1], 256.0);
  EXPECT_EQ(h[2], 65536.0);
  double all_zero[3] = {0.0, 0.0, 0.0};
  EXPECT_EQ(ZeroElim(3, all_zero), 0);
  EXPECT_EQ(SignOfExpansion(0, all_zero), 0);
}

// --- Public predicate kernels vs the exact rational oracle ----------------

// Small-denominator rational: numerator up to ~2^62, denominator from a
// fixed small set so lcm stays far under 2^53 — squarely inside the
// envelope the expansion stage advertises.
Rational EnvelopeCoord(std::mt19937_64& rng) {
  static const int64_t dens[] = {1, 2, 3, 4, 5, 6, 7, 15, 16, 255};
  const int64_t num =
      static_cast<int64_t>(rng() % (uint64_t{1} << 62)) - (int64_t{1} << 61);
  return Rational(num, dens[rng() % (sizeof(dens) / sizeof(dens[0]))]);
}

TEST(ExpansionPredicateTest, OrientationMatchesExactOnEnvelopeInputs) {
  std::mt19937_64 rng(21);
  int applied = 0;
  for (int iter = 0; iter < 500; ++iter) {
    const Point a(EnvelopeCoord(rng), EnvelopeCoord(rng));
    const Point b(EnvelopeCoord(rng), EnvelopeCoord(rng));
    const Point c(EnvelopeCoord(rng), EnvelopeCoord(rng));
    int sign = 99;
    if (ExpansionOrientation(a.x, a.y, b.x, b.y, c.x, c.y, &sign)) {
      ++applied;
      EXPECT_EQ(sign, OrientationExact(a, b, c))
          << a.ToString() << " " << b.ToString() << " " << c.ToString();
    }
    // Exact collinear triple from the same base points: the zero case.
    const Point m = a + (b - a) * Rational(1, 2);
    if (ExpansionOrientation(a.x, a.y, b.x, b.y, m.x, m.y, &sign)) {
      EXPECT_EQ(sign, 0);
    }
  }
  // The envelope must actually cover this family, or the stage is dead code.
  EXPECT_GT(applied, 400);
}

TEST(ExpansionPredicateTest, TinyPerturbationsKeepExactSigns) {
  // Collinear triple pushed off the line by ±1/2^k, k up to 50: the
  // perturbation is invisible to a plain double evaluation from k ≈ 30 on
  // (magnitudes ~2^30 times larger), but the expansion stage must recover
  // the exact sign because nothing in it rounds.
  std::mt19937_64 rng(22);
  for (int iter = 0; iter < 500; ++iter) {
    const int64_t x0 = static_cast<int64_t>(rng() % 2001) - 1000;
    const int64_t y0 = static_cast<int64_t>(rng() % 2001) - 1000;
    const int64_t dx = 1 + static_cast<int64_t>(rng() % 1000000);
    const int64_t dy = static_cast<int64_t>(rng() % 2000001) - 1000000;
    const Point a(x0, y0);
    const Point b(x0 + dx, y0 + dy);
    const Point mid = a + (b - a) * Rational(1, 2);
    const int k = 1 + static_cast<int>(rng() % 50);
    const int eps_sign = (rng() & 1) ? 1 : -1;
    const Rational eps(BigInt(eps_sign), BigInt(1).ShiftLeft(k));
    const Point off(mid.x, mid.y + eps);
    int sign = 99;
    if (ExpansionOrientation(a.x, a.y, b.x, b.y, off.x, off.y, &sign)) {
      // dx > 0, so the orientation sign equals the perturbation sign.
      EXPECT_EQ(sign, eps_sign) << "k=" << k;
      EXPECT_EQ(sign, OrientationExact(a, b, off));
    }
  }
}

TEST(ExpansionPredicateTest, CrossDotAlongCompareMatchExact) {
  std::mt19937_64 rng(23);
  for (int iter = 0; iter < 500; ++iter) {
    const Rational ux = EnvelopeCoord(rng), uy = EnvelopeCoord(rng);
    const Rational vx = EnvelopeCoord(rng), vy = EnvelopeCoord(rng);
    int sign = 99;
    if (ExpansionCrossSign(ux, uy, vx, vy, &sign)) {
      EXPECT_EQ(sign, (ux * vy - uy * vx).sign());
    }
    if (ExpansionDotSign(ux, uy, vx, vy, &sign)) {
      EXPECT_EQ(sign, (ux * vx + uy * vy).sign());
    }
    const Rational px = EnvelopeCoord(rng), py = EnvelopeCoord(rng);
    if (ExpansionAlongSign(px, py, ux, uy, vx, vy, &sign)) {
      EXPECT_EQ(sign, ((px - ux) * vx + (py - uy) * vy).sign());
    }
    if (ExpansionCompareSign(px, ux, &sign)) {
      EXPECT_EQ(sign, (px - ux).sign());
    }
    // Equal values must compare zero, not merely small.
    if (ExpansionCompareSign(px, px, &sign)) {
      EXPECT_EQ(sign, 0);
    }
  }
}

TEST(ExpansionPredicateTest, DeclinesOutsideEnvelope) {
  // Denominator 2^200: lcm folding must bail, never answer.
  const Rational big_den(BigInt(1), BigInt(1).ShiftLeft(200));
  // Numerator 2^200: decomposition exceeds 4 limbs.
  const Rational big_num(BigInt(1).ShiftLeft(200), BigInt(1));
  const Rational one(1);
  int sign = 99;
  EXPECT_FALSE(ExpansionCompareSign(big_den, one, &sign));
  EXPECT_FALSE(ExpansionCompareSign(big_num, one, &sign));
  EXPECT_FALSE(ExpansionOrientation(big_num, one, one, one, one, big_den, &sign));
  EXPECT_FALSE(ExpansionDotSign(big_den, big_den, one, one, &sign));
  // Declining must not have written a sign.
  EXPECT_EQ(sign, 99);
}

TEST(ExpansionPredicateTest, FilteredPipelineRoutesThroughExpansionStage) {
  // A stretch-scaled coordinate family modeled on the bench's stretch-*
  // workloads: integers times 2^64/3 etc. The static stage cannot certify
  // (values far exceed its bit caps), intervals cannot separate the
  // near-collinear cases, but the lcm envelope applies — so the expansion
  // stage must absorb work that previously fell through to rationals.
  const PredicateFilterStats before = LocalPredicateFilterStats();
  const Rational stretch(BigInt(1).ShiftLeft(64), BigInt(3));
  std::mt19937_64 rng(24);
  int decided = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const int64_t x0 = static_cast<int64_t>(rng() % 201) - 100;
    const int64_t dx = 1 + static_cast<int64_t>(rng() % 9);
    const int64_t dy = static_cast<int64_t>(rng() % 9) - 4;
    const Point a(Rational(x0) * stretch, Rational(x0 + 1) * stretch);
    const Point b(Rational(x0 + dx) * stretch, Rational(x0 + 1 + dy) * stretch);
    const Point mid = a + (b - a) * Rational(1, 2);
    decided += Orientation(a, b, mid) == 0 ? 1 : 0;
    EXPECT_EQ(Orientation(a, b, mid), OrientationExact(a, b, mid));
  }
  EXPECT_EQ(decided, 50);
  const PredicateFilterStats after = LocalPredicateFilterStats();
  EXPECT_GT(after.expansion_hits, before.expansion_hits);
}

}  // namespace
}  // namespace topodb
