// LimbVec small-buffer semantics and LimbArena lifetime rules (DESIGN.md
// §5f): inline/heap/arena state transitions, Detach on escaping values,
// scope nesting, and bump-reset reclamation. These are the invariants the
// arrangement builder's arena-backed build leans on, so they are pinned
// here independently of any geometry.

#include <cstdint>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/base/bigint.h"
#include "src/base/limb_arena.h"
#include "src/base/limbvec.h"
#include "src/base/rational.h"

namespace topodb {
namespace {

TEST(LimbVecTest, StaysInlineUpToCapacity) {
  LimbVec v;
  EXPECT_TRUE(v.is_inline());
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), LimbVec::kInlineCapacity);
  for (uint32_t i = 0; i < LimbVec::kInlineCapacity; ++i) v.push_back(i * 7u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_FALSE(v.from_arena());
  EXPECT_EQ(v.size(), LimbVec::kInlineCapacity);
  for (uint32_t i = 0; i < LimbVec::kInlineCapacity; ++i) EXPECT_EQ(v[i], i * 7u);
}

TEST(LimbVecTest, SpillsToHeapPreservingContents) {
  LimbVec v;
  for (uint32_t i = 0; i < 20; ++i) v.push_back(i + 100u);
  EXPECT_FALSE(v.is_inline());
  EXPECT_FALSE(v.from_arena());  // No arena installed.
  EXPECT_GT(v.capacity(), LimbVec::kInlineCapacity);
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(v[i], i + 100u);
}

TEST(LimbVecTest, CopiesShrinkBackInline) {
  LimbVec v;
  for (uint32_t i = 0; i < 20; ++i) v.push_back(i);
  while (v.size() > 5) v.pop_back();
  ASSERT_FALSE(v.is_inline());  // Shrinking does not release the block...
  LimbVec copy(v);
  EXPECT_TRUE(copy.is_inline());  // ...but a copy of 5 limbs fits inline.
  EXPECT_EQ(copy.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(copy[i], i);
}

TEST(LimbVecTest, MoveStealsHeapBlockAndResetsSource) {
  LimbVec v;
  for (uint32_t i = 0; i < 20; ++i) v.push_back(i);
  const uint32_t* block = v.data();
  LimbVec moved(std::move(v));
  EXPECT_EQ(moved.data(), block);  // No copy: the block moved over.
  EXPECT_EQ(moved.size(), 20u);
  EXPECT_TRUE(v.is_inline());  // NOLINT(bugprone-use-after-move): reset state.
  EXPECT_TRUE(v.empty());
}

TEST(LimbVecTest, AssignDiscardsOldContents) {
  LimbVec v;
  for (uint32_t i = 0; i < 12; ++i) v.push_back(i);
  v.assign(30, 0xdeadbeefu);
  EXPECT_EQ(v.size(), 30u);
  for (uint32_t i = 0; i < 30; ++i) EXPECT_EQ(v[i], 0xdeadbeefu);
  v.assign(2, 1u);
  EXPECT_EQ(v.size(), 2u);
}

TEST(LimbVecArenaTest, SpillInsideScopeComesFromArena) {
  ScopedLimbArena scope;
  ASSERT_EQ(ActiveLimbArena(), &scope.arena());
  LimbVec v;
  for (uint32_t i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_TRUE(v.from_arena());
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(v[i], i);
  // Destruction of v at scope end must not free the arena block (the
  // destructor never touches arena memory) — covered by running under
  // ASan in CI, which would flag any double free.
}

TEST(LimbVecArenaTest, DetachCopiesOutOfArena) {
  LimbVec small_escape;
  LimbVec large_escape;
  {
    ScopedLimbArena scope;
    LimbVec v;
    for (uint32_t i = 0; i < 20; ++i) v.push_back(i);
    while (v.size() > 6) v.pop_back();
    ASSERT_TRUE(v.from_arena());
    v.Detach();
    EXPECT_TRUE(v.is_inline());  // 6 limbs fit back inline.
    small_escape = v;

    LimbVec w;
    for (uint32_t i = 0; i < 40; ++i) w.push_back(i * 3u);
    ASSERT_TRUE(w.from_arena());
    w.Detach();
    EXPECT_FALSE(w.is_inline());
    EXPECT_FALSE(w.from_arena());  // Plain heap now, arena bypassed.
    large_escape = std::move(w);
  }
  // Both values outlive the arena; their storage must be intact.
  EXPECT_EQ(small_escape.size(), 6u);
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(small_escape[i], i);
  EXPECT_EQ(large_escape.size(), 40u);
  for (uint32_t i = 0; i < 40; ++i) EXPECT_EQ(large_escape[i], i * 3u);
}

TEST(LimbVecArenaTest, DetachOnInlineOrPlainHeapIsANoOp) {
  LimbVec inline_v;
  inline_v.push_back(5);
  inline_v.Detach();
  EXPECT_TRUE(inline_v.is_inline());
  EXPECT_EQ(inline_v[0], 5u);

  LimbVec heap_v;
  for (uint32_t i = 0; i < 20; ++i) heap_v.push_back(i);
  const uint32_t* block = heap_v.data();
  heap_v.Detach();
  EXPECT_EQ(heap_v.data(), block);  // Already owned: nothing to copy.
}

TEST(LimbArenaTest, ScopesNestAndRestore) {
  EXPECT_EQ(ActiveLimbArena(), nullptr);
  {
    ScopedLimbArena outer;
    EXPECT_EQ(ActiveLimbArena(), &outer.arena());
    {
      ScopedLimbArena inner;
      EXPECT_EQ(ActiveLimbArena(), &inner.arena());
      EXPECT_NE(&inner.arena(), &outer.arena());
    }
    EXPECT_EQ(ActiveLimbArena(), &outer.arena());
  }
  EXPECT_EQ(ActiveLimbArena(), nullptr);
}

TEST(LimbArenaTest, ResetKeepsLargestChunk) {
  LimbArena arena;
  EXPECT_EQ(arena.CapacityLimbs(), 0u);
  // First allocation creates the initial chunk; an oversized request later
  // forces a larger chunk.
  arena.Allocate(100);
  const size_t first_cap = arena.CapacityLimbs();
  EXPECT_GE(first_cap, 100u);
  arena.Allocate(first_cap * 4);
  const size_t grown_cap = arena.CapacityLimbs();
  EXPECT_GT(grown_cap, first_cap);
  arena.Reset();
  // Only the largest chunk survives, so a reused arena converges to one
  // block sized by peak demand.
  EXPECT_EQ(arena.CapacityLimbs(), grown_cap - first_cap);
  // And the retained chunk is immediately reusable without growth.
  arena.Allocate(first_cap * 4);
  EXPECT_EQ(arena.CapacityLimbs(), grown_cap - first_cap);
}

TEST(LimbArenaTest, BumpAllocationsDoNotOverlap) {
  LimbArena arena;
  uint32_t* a = arena.Allocate(16);
  uint32_t* b = arena.Allocate(16);
  for (int i = 0; i < 16; ++i) a[i] = 1;
  for (int i = 0; i < 16; ++i) b[i] = 2;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 1u);
}

TEST(LimbArenaTest, BigIntAndRationalDetachPreserveValues) {
  // A value computed inside an arena scope, detached, must survive the
  // scope with full precision — the exact pattern of CellComplex points.
  BigInt big_escape;
  Rational rat_escape;
  std::string want_big, want_rat;
  {
    ScopedLimbArena scope;
    BigInt v(1);
    for (int i = 0; i < 30; ++i) v = v * BigInt(1000003);  // ~600 bits.
    want_big = v.ToString();
    // Detach the escaping object itself, last: a copy made while the arena
    // is active is arena-backed again regardless of the source's state.
    big_escape = v;
    big_escape.Detach();

    Rational r(BigInt(1).ShiftLeft(400) + BigInt(7), BigInt(3).ShiftLeft(100));
    want_rat = r.ToString();
    rat_escape = r;
    rat_escape.Detach();
  }
  EXPECT_EQ(big_escape.ToString(), want_big);
  EXPECT_EQ(rat_escape.ToString(), want_rat);
}

}  // namespace
}  // namespace topodb
