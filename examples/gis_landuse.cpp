// A geographic-information scenario: a county map with water, parks and
// built-up areas. Shows the 4-intersection relation matrix (the GIS
// vocabulary the paper starts from), topological queries that the
// relations alone cannot answer, and invariance under map reprojection.
//
// Run: ./build/examples/gis_landuse

#include <cstdio>
#include <iomanip>
#include <iostream>

#include "src/topodb.h"

namespace {

template <typename T>
T Unwrap(topodb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace topodb;

  // The map: a county; a lake strictly inside it; an island inside the
  // lake; a park covering part of the county and meeting the lake shore;
  // a commercial strip crossing the county border.
  SpatialInstance map;
  (void)map.AddRegion("county",
                      Unwrap(Region::MakeRect(Point(0, 0), Point(100, 60))));
  (void)map.AddRegion("lake", Unwrap(Region::MakePoly(
                                  {Point(20, 15), Point(50, 12),
                                   Point(55, 35), Point(30, 42),
                                   Point(15, 30)})));
  (void)map.AddRegion("island",
                      Unwrap(Region::MakeRect(Point(30, 20), Point(40, 30))));
  // The park shares a stretch of the lake's north-east shore.
  (void)map.AddRegion("park", Unwrap(Region::MakePoly(
                                 {Point(50, 12), Point(85, 10),
                                  Point(88, 45), Point(55, 35)})));
  (void)map.AddRegion("strip",
                      Unwrap(Region::MakeRect(Point(90, 20), Point(110, 30))));

  // 1. The Egenhofer relation matrix.
  const auto names = map.names();
  std::cout << "4-intersection relations:\n";
  for (const auto& a : names) {
    for (const auto& b : names) {
      if (a >= b) continue;
      std::cout << "  " << std::setw(7) << a << " vs " << std::setw(7) << b
                << " : " << FourIntRelationName(Unwrap(Relate(map, a, b)))
                << "\n";
    }
  }

  // 2. Queries beyond the pairwise relations.
  QueryEngine engine = Unwrap(QueryEngine::Build(map));
  struct NamedQuery {
    const char* question;
    const char* query;
  } queries[] = {
      {"is the island dry land (disjoint from every other region's "
       "boundary reachable only via the lake)?",
       "inside(island, lake)"},
      {"does any region cross the county border?",
       "exists name a . not (a = county) and overlap(a, county)"},
      {"is there open county land adjacent to both lake and park?",
       "exists region r . subset(r, county) and connect(r, lake) and "
       "connect(r, park) and disjoint(r, island)"},
      {"do lake and park share shoreline (meet)?", "meet(lake, park)"},
  };
  std::cout << "\nqueries:\n";
  for (const auto& [question, query] : queries) {
    std::cout << "  " << question << "\n    [" << query << "] -> "
              << (Unwrap(engine.Evaluate(query)) ? "yes" : "no") << "\n";
  }

  // 3. Reprojection invariance: a shear + anisotropic scale (a crude map
  // projection change) leaves every topological answer unchanged.
  AffineTransform projection =
      Unwrap(AffineTransform::Make(Rational(3, 2), Rational(1, 4), 10,
                                   Rational(0), Rational(2), -5));
  SpatialInstance reprojected = Unwrap(projection.ApplyToInstance(map));
  TopologicalInvariant before = Unwrap(TopologicalInvariant::Compute(map));
  TopologicalInvariant after =
      Unwrap(TopologicalInvariant::Compute(reprojected));
  std::cout << "\nreprojection preserves the invariant: "
            << (before.EquivalentTo(after) ? "yes" : "no") << "\n";

  // 4. The containment structure is visible in the invariant.
  std::cout << "skeleton components: " << before.data().ComponentCount()
            << " (county+park+strip boundaries, lake, island)\n";
  return 0;
}
