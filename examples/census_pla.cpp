// The topological data model (the paper's PLA-style scenario): keep ONLY
// the relational thematic(I) tables, run classical relational queries on
// them, apply a direct update, validate it with the Theorem 3.8 integrity
// check, and materialize a polygonal representative with Theorem 3.5.
//
// Run: ./build/examples/census_pla

#include <cstdio>
#include <iostream>

#include "src/topodb.h"

namespace {

template <typename T>
T Unwrap(topodb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace topodb;

  // Census tracts: two adjacent tracts sharing a boundary arc, and an
  // enclave strictly inside the first.
  SpatialInstance tracts;
  (void)tracts.AddRegion("tractA",
                         Unwrap(Region::MakeRect(Point(0, 0), Point(40, 30))));
  (void)tracts.AddRegion("tractB",
                         Unwrap(Region::MakeRect(Point(40, 5), Point(70, 25))));
  (void)tracts.AddRegion(
      "enclave", Unwrap(Region::MakeRect(Point(10, 10), Point(20, 20))));

  // 1. Extract the invariant, drop the geometry, keep thematic(I).
  InvariantData invariant = Unwrap(ComputeInvariant(tracts));
  ThematicInstance theme = ToThematic(invariant);
  std::cout << "thematic database:\n" << theme.DebugString() << "\n";

  // 2. Classical relational queries on the tables (Cor 3.7 spirit).
  // "Edges on the boundary between two named tracts": edges whose two
  // sides belong to different regions' faces.
  Table a_faces = Unwrap(theme.region_faces.SelectEquals("region", "tractA"));
  Table b_faces = Unwrap(theme.region_faces.SelectEquals("region", "tractB"));
  Table a_edges = Unwrap(
      Unwrap(Unwrap(a_faces.Project({"face"})).Join(theme.face_edges))
          .Project({"edge"}));
  Table b_edges = Unwrap(
      Unwrap(Unwrap(b_faces.Project({"face"})).Join(theme.face_edges))
          .Project({"edge"}));
  Table shared = Unwrap(a_edges.Join(b_edges));
  std::cout << "edges bounding both tractA and tractB faces:\n"
            << shared.DebugString() << "\n";

  // 3. Integrity: the stored instance passes the Theorem 3.8 check.
  Status valid = ValidateThematic(theme);
  std::cout << "thematic instance valid: " << (valid.ok() ? "yes" : "no")
            << "\n";

  // 4. A careless direct update: claim the exterior face for the enclave.
  ThematicInstance corrupted = theme;
  (void)corrupted.region_faces.Insert(
      {"enclave", FaceId(invariant.exterior_face)});
  Status after_update = ValidateThematic(corrupted);
  std::cout << "after bad update: "
            << (after_update.ok() ? "accepted (?!)" : after_update.ToString())
            << "\n";

  // 5. A sound update: forget the enclave entirely (delete its rows).
  // Remove the enclave region and the cells only it used. Easiest sound
  // route: reconstruct, drop the region, recompute.
  SpatialInstance without_enclave = tracts;
  (void)without_enclave.RemoveRegion("enclave");
  ThematicInstance updated =
      ToThematic(Unwrap(ComputeInvariant(without_enclave)));
  std::cout << "updated instance valid: "
            << (ValidateThematic(updated).ok() ? "yes" : "no") << "\n";

  // 6. Theorem 3.5: materialize a polygonal representative of the stored
  // topology (no original geometry needed) and verify the round trip.
  InvariantData stored = Unwrap(FromThematic(updated));
  SpatialInstance rebuilt = Unwrap(ReconstructPolyInstance(stored));
  std::cout << "reconstructed regions:";
  for (const auto& name : rebuilt.names()) std::cout << " " << name;
  std::cout << "\nround trip invariant matches: "
            << (*Isomorphic(stored, Unwrap(ComputeInvariant(rebuilt)))
                    ? "yes"
                    : "no")
            << "\n";
  return 0;
}
