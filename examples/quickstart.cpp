// Quickstart: build a spatial instance, compute its cell complex and
// topological invariant, decide topological equivalence, and ask a few
// region-based queries.
//
// Run: ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "src/topodb.h"

namespace {

// Aborts with the error message if a fallible expression failed.
template <typename T>
T Unwrap(topodb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace topodb;

  // 1. Two overlapping regions (the paper's Fig 1c).
  SpatialInstance instance;
  (void)instance.AddRegion("A", Unwrap(Region::MakeRect(Point(0, 0),
                                                        Point(8, 8))));
  (void)instance.AddRegion("B", Unwrap(Region::MakeRect(Point(4, -2),
                                                        Point(12, 6))));

  // 2. The cell complex of the region boundaries (paper Fig 5).
  CellComplex complex = Unwrap(CellComplex::Build(instance));
  std::cout << complex.DebugString() << "\n";

  // 3. The topological invariant T_I and its canonical form.
  TopologicalInvariant invariant =
      Unwrap(TopologicalInvariant::Compute(instance));
  std::cout << "invariant: " << invariant.data().DebugString() << "\n";

  // 4. Topological equivalence is canonical-string equality: a sheared
  // copy is homeomorphic, Fig 1d is not.
  AffineTransform shear = Unwrap(AffineTransform::Make(1, 1, 0, 0, 1, 0));
  TopologicalInvariant sheared = Unwrap(
      TopologicalInvariant::Compute(Unwrap(shear.ApplyToInstance(instance))));
  TopologicalInvariant fig1d =
      Unwrap(TopologicalInvariant::Compute(Fig1dInstance()));
  std::cout << "equivalent to sheared copy: "
            << (invariant.EquivalentTo(sheared) ? "yes" : "no") << "\n";
  std::cout << "equivalent to Fig 1d:       "
            << (invariant.EquivalentTo(fig1d) ? "yes" : "no") << "\n";

  // 5. Egenhofer relation between A and B.
  std::cout << "relate(A, B) = "
            << FourIntRelationName(Unwrap(Relate(instance, "A", "B")))
            << "\n";

  // 6. Region-based queries (Section 4 / Section 7 semantics).
  QueryEngine engine = Unwrap(QueryEngine::Build(instance));
  for (const char* query :
       {"overlap(A, B)",
        "exists region r . subset(r, A) and subset(r, B)",
        "forall region r . forall region s . "
        "(subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) "
        "implies exists region t . subset(t, A) and subset(t, B) and "
        "connect(t, r) and connect(t, s)"}) {
    std::cout << "eval [" << query << "] = "
              << (Unwrap(engine.Evaluate(query)) ? "true" : "false") << "\n";
  }

  // 7. The thematic relational form (paper Fig 9).
  ThematicInstance theme = ToThematic(invariant.data());
  std::cout << "\nthematic(I):\n" << theme.DebugString();
  return 0;
}
