// The region-based query language on the paper's Fig 1 instances: shows
// that the 4-intersection relations alone cannot separate them (they are
// 4-intersection equivalent), while first-order sentences with region
// quantifiers do (Examples 4.1 and 4.2).
//
// Run: ./build/examples/query_language

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <vector>

#include "src/topodb.h"

namespace {

template <typename T>
T Unwrap(topodb::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace topodb;

  struct Named {
    const char* name;
    SpatialInstance instance;
  };
  std::vector<Named> abc = {{"Fig1a", Fig1aInstance()},
                            {"Fig1b", Fig1bInstance()}};
  std::vector<Named> ab = {{"Fig1c", Fig1cInstance()},
                           {"Fig1d", Fig1dInstance()}};

  std::cout << "4-intersection equivalences (the relations cannot tell the "
               "pairs apart):\n";
  std::cout << "  Fig1a ~4 Fig1b : "
            << (Unwrap(FourIntEquivalent(abc[0].instance, abc[1].instance))
                    ? "yes"
                    : "no")
            << "\n";
  std::cout << "  Fig1c ~4 Fig1d : "
            << (Unwrap(FourIntEquivalent(ab[0].instance, ab[1].instance))
                    ? "yes"
                    : "no")
            << "\n\n";

  const char* example_41 =
      "exists region r . subset(r, A) and subset(r, B) and subset(r, C)";
  const char* example_41_cells =
      "exists cell c . subset(c, A) and subset(c, B) and subset(c, C)";
  std::cout << "Example 4.1 (nonempty triple intersection):\n  " << example_41
            << "\n";
  for (const auto& [name, instance] : abc) {
    QueryEngine engine = Unwrap(QueryEngine::Build(instance));
    std::cout << "    " << name << " -> region quantifier: "
              << (Unwrap(engine.Evaluate(example_41)) ? "true" : "false")
              << ", cell quantifier: "
              << (Unwrap(engine.Evaluate(example_41_cells)) ? "true"
                                                            : "false")
              << "\n";
  }

  const char* example_42 =
      "forall region r . forall region s . "
      "(subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) "
      "implies exists region t . subset(t, A) and subset(t, B) and "
      "connect(t, r) and connect(t, s)";
  std::cout << "\nExample 4.2 (A n B is connected):\n  " << example_42
            << "\n";
  for (const auto& [name, instance] : ab) {
    QueryEngine engine = Unwrap(QueryEngine::Build(instance));
    std::cout << "    " << name << " -> "
              << (Unwrap(engine.Evaluate(example_42)) ? "true" : "false")
              << "\n";
  }

  // Invariant-level confirmation (Theorem 3.4 separates both pairs).
  std::cout << "\ninvariant equivalences (Theorem 3.4):\n";
  std::cout << "  Fig1a ~H Fig1b : "
            << (*Isomorphic(Unwrap(ComputeInvariant(abc[0].instance)),
                           Unwrap(ComputeInvariant(abc[1].instance)))
                    ? "yes"
                    : "no")
            << "\n";
  std::cout << "  Fig1c ~H Fig1d : "
            << (*Isomorphic(Unwrap(ComputeInvariant(ab[0].instance)),
                           Unwrap(ComputeInvariant(ab[1].instance)))
                    ? "yes"
                    : "no")
            << "\n";

  // Fig 13 predicates over FO(Rect, Rect): edge contact vs corner contact,
  // expressed in the language with rect quantifiers (Theorem 5.8's
  // tractable fragment) and via the built-in reference predicates.
  std::cout << "\nFig 13 predicates in FO(Rect, Rect):\n";
  SpatialInstance rects;
  (void)rects.AddRegion("P",
                        Unwrap(Region::MakeRect(Point(0, 0), Point(4, 4))));
  (void)rects.AddRegion("Q",
                        Unwrap(Region::MakeRect(Point(4, 0), Point(8, 4))));
  (void)rects.AddRegion("C",
                        Unwrap(Region::MakeRect(Point(8, 4), Point(12, 8))));
  RectQueryEngine rect_engine = Unwrap(RectQueryEngine::Build(rects));
  auto edge_query = [](const char* a, const char* b) {
    return std::string("meet(") + a + ", " + b + ") and exists rect x . " +
           "overlap(x, " + a + ") and overlap(x, " + b + ") and " +
           "(forall rect q . connect(x, q) implies (connect(" + a +
           ", q) or connect(" + b + ", q)))";
  };
  std::cout << "  edge(P, Q) in the language -> "
            << (Unwrap(rect_engine.Evaluate(edge_query("P", "Q"))) ? "true"
                                                                   : "false")
            << " (reference: "
            << (Unwrap(rect_engine.Edge("P", "Q")) ? "true" : "false")
            << ")\n";
  std::cout << "  edge(Q, C) in the language -> "
            << (Unwrap(rect_engine.Evaluate(edge_query("Q", "C"))) ? "true"
                                                                   : "false")
            << " (corner contact; reference corner(Q, C): "
            << (Unwrap(rect_engine.Corner("Q", "C")) ? "true" : "false")
            << ")\n";
  std::cout << "  oneedge(P, Q) -> "
            << (Unwrap(rect_engine.OneEdge("P", "Q")) ? "true" : "false")
            << "\n";
  return 0;
}
